//! The session multigraph (paper Sec. IV-B-1, Fig. 3).
//!
//! Nodes are the *distinct* items of the macro sequence; each transition
//! `v^i → v^{i+1}` contributes its own directed edge, and edges keep the
//! macro position of their endpoints so message passing can use the
//! occurrence-specific micro-operation encoding `h̃` of each endpoint.
//!
//! The star node of SGNN-HN is not materialized as a graph node here — its
//! bidirectional connection to every satellite is implicit and handled by the
//! model's star update equations (eq. 9–10) — but the graph exposes the
//! satellite bookkeeping those equations need.

use std::collections::HashMap;

use crate::merge::MacroStep;
use crate::types::{ItemId, Session};

/// One side of an edge as seen from a node: the neighbor node and the macro
/// position (step index) of the occurrence whose operation encoding feeds the
/// message (paper eq. 5).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EdgeEndpoint {
    /// Index of the neighboring node in [`SessionGraph::nodes`].
    pub node: usize,
    /// Macro-step index of the neighbor occurrence for this edge.
    pub step: usize,
}

/// Directed multigraph of a session's macro-item sequence with ordered edges.
#[derive(Clone, Debug)]
pub struct SessionGraph {
    /// Distinct items in order of first appearance (`S^u` in the paper).
    pub nodes: Vec<ItemId>,
    /// The merged macro sequence (`S^v` + `S^o`).
    pub steps: Vec<MacroStep>,
    /// For each macro step, the index of its node.
    pub step_node: Vec<usize>,
    /// Incoming edges per node: for node `u_i`, entries `(u_j, step)` for
    /// each transition `u_j → u_i`, where `step` is the macro position of the
    /// **source** occurrence.
    pub in_edges: Vec<Vec<EdgeEndpoint>>,
    /// Outgoing edges per node: for node `u_i`, entries `(u_j, step)` for
    /// each transition `u_i → u_j`, where `step` is the macro position of the
    /// **target** occurrence.
    pub out_edges: Vec<Vec<EdgeEndpoint>>,
}

impl SessionGraph {
    /// Builds the multigraph from merged macro steps.
    pub fn from_steps(steps: Vec<MacroStep>) -> Self {
        let mut node_of: HashMap<ItemId, usize> = HashMap::new();
        let mut nodes: Vec<ItemId> = Vec::new();
        let mut step_node = Vec::with_capacity(steps.len());
        for s in &steps {
            let idx = *node_of.entry(s.item).or_insert_with(|| {
                nodes.push(s.item);
                nodes.len() - 1
            });
            step_node.push(idx);
        }
        let mut in_edges = vec![Vec::new(); nodes.len()];
        let mut out_edges = vec![Vec::new(); nodes.len()];
        for k in 0..steps.len().saturating_sub(1) {
            let src = step_node[k];
            let dst = step_node[k + 1];
            // Edge (v^k -> v^{k+1}); position k on the source side, k+1 on
            // the target side.
            in_edges[dst].push(EdgeEndpoint { node: src, step: k });
            out_edges[src].push(EdgeEndpoint {
                node: dst,
                step: k + 1,
            });
        }
        SessionGraph {
            nodes,
            steps,
            step_node,
            in_edges,
            out_edges,
        }
    }

    /// Builds the multigraph directly from a session.
    pub fn from_session(session: &Session) -> Self {
        if embsr_obs::metrics::enabled() {
            embsr_obs::metrics::counter("sessions.graphs_built").inc();
        }
        Self::from_steps(session.macro_steps())
    }

    /// Number of distinct items (`c` in the paper).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of macro steps (`n` in the paper).
    pub fn num_steps(&self) -> usize {
        self.steps.len()
    }

    /// Total number of directed edges (excluding the implicit star edges).
    pub fn num_edges(&self) -> usize {
        self.steps.len().saturating_sub(1)
    }

    /// True when two macro positions map to the same node — i.e. the graph
    /// genuinely needs multigraph semantics.
    pub fn has_revisits(&self) -> bool {
        self.num_steps() > self.num_nodes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::MicroBehavior;

    fn session(pairs: &[(u32, u16)]) -> Session {
        Session {
            id: 0,
            events: pairs
                .iter()
                .map(|&(i, o)| MicroBehavior { item: i, op: o })
                .collect(),
        }
    }

    /// The running example of Fig. 3: S^v = v1 v2 v3 v2 v3 v4.
    fn fig3_graph() -> SessionGraph {
        let s = session(&[
            (1, 1),
            (2, 1),
            (3, 1),
            (2, 1),
            (2, 2),
            (3, 1),
            (3, 2),
            (3, 3),
            (4, 1),
        ]);
        SessionGraph::from_session(&s)
    }

    #[test]
    fn fig3_nodes_are_distinct_items_in_first_appearance_order() {
        let g = fig3_graph();
        assert_eq!(g.nodes, vec![1, 2, 3, 4]);
        assert_eq!(g.num_steps(), 6);
        assert!(g.has_revisits());
    }

    #[test]
    fn fig3_multigraph_keeps_parallel_edges() {
        let g = fig3_graph();
        // v2 -> v3 occurs twice (positions 1->2 and 3->4): node 2 (item 3)
        // must have two incoming edges from node 1 (item 2).
        let v3 = 2usize;
        let from_v2: Vec<_> = g.in_edges[v3].iter().filter(|e| e.node == 1).collect();
        assert_eq!(from_v2.len(), 2);
        // ...with different source positions, so different op encodings flow.
        assert_ne!(from_v2[0].step, from_v2[1].step);
        assert_eq!(from_v2[0].step, 1);
        assert_eq!(from_v2[1].step, 3);
    }

    #[test]
    fn fig3_out_edges_use_target_positions() {
        let g = fig3_graph();
        // node for item 2 (index 1) has outgoing edges to item 3 at target
        // positions 2 and 4.
        let outs: Vec<_> = g.out_edges[1].iter().filter(|e| e.node == 2).collect();
        assert_eq!(outs.len(), 2);
        assert_eq!(outs[0].step, 2);
        assert_eq!(outs[1].step, 4);
    }

    #[test]
    fn edge_count_is_transitions() {
        let g = fig3_graph();
        assert_eq!(g.num_edges(), 5);
        let total_in: usize = g.in_edges.iter().map(Vec::len).sum();
        let total_out: usize = g.out_edges.iter().map(Vec::len).sum();
        assert_eq!(total_in, 5);
        assert_eq!(total_out, 5);
    }

    #[test]
    fn single_step_graph_has_no_edges() {
        let g = SessionGraph::from_session(&session(&[(7, 0), (7, 1)]));
        assert_eq!(g.num_nodes(), 1);
        assert_eq!(g.num_edges(), 0);
        assert!(!g.has_revisits());
    }

    #[test]
    fn self_loop_free_by_merging() {
        // merging prevents v->v edges
        let g = SessionGraph::from_session(&session(&[(1, 0), (1, 1), (2, 0)]));
        for (i, edges) in g.out_edges.iter().enumerate() {
            for e in edges {
                assert_ne!(e.node, i, "self loop at node {i}");
            }
        }
    }
}

#[cfg(test)]
mod randomized {
    use super::*;
    use crate::testrand::TestRand;
    use crate::types::MicroBehavior;

    #[test]
    fn step_node_is_consistent() {
        let mut r = TestRand::new(0x4752_4150);
        for _ in 0..256 {
            let len = 1 + r.below(39);
            let s = Session {
                id: 0,
                events: (0..len)
                    .map(|_| MicroBehavior {
                        item: r.below(8) as u32,
                        op: r.below(3) as u16,
                    })
                    .collect(),
            };
            let g = SessionGraph::from_session(&s);
            // every step's node holds the step's item
            for (k, step) in g.steps.iter().enumerate() {
                assert_eq!(g.nodes[g.step_node[k]], step.item);
            }
            // edge conservation: in-degree total == out-degree total == n-1
            let tin: usize = g.in_edges.iter().map(Vec::len).sum();
            let tout: usize = g.out_edges.iter().map(Vec::len).sum();
            assert_eq!(tin, g.num_edges());
            assert_eq!(tout, g.num_edges());
            // all endpoints in range
            for edges in g.in_edges.iter().chain(g.out_edges.iter()) {
                for e in edges {
                    assert!(e.node < g.num_nodes());
                    assert!(e.step < g.num_steps());
                }
            }
        }
    }
}
