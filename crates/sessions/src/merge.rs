//! Macro-item merging (paper Sec. II-B).
//!
//! Successive micro-behaviors on the *same* item are merged into one
//! [`MacroStep`] holding the item and its operation sub-sequence. E.g. the
//! session of paper Fig. 3,
//! `(v1,o1) (v2,o1) (v3,o1) (v2,o1) (v2,o2) (v3,o1) (v3,o2) (v3,o3) (v4,o1)`,
//! merges to macro sequence `v1 v2 v3 v2 v3 v4` with operation lists
//! `(o1) (o1) (o1) (o1,o2) (o1,o2,o3) (o1)`.

use crate::types::{ItemId, MicroBehavior, OpId, Session};

/// One macro-item `v^i` with its micro-operation sequence
/// `o^i = {o^i_1, …, o^i_k}`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MacroStep {
    pub item: ItemId,
    pub ops: Vec<OpId>,
}

/// Merges successive same-item micro-behaviors into the macro-item sequence.
///
/// A *non-adjacent* revisit of an item starts a new macro step, which is what
/// makes the session graph a multigraph.
pub fn merge_micro_behaviors(events: &[MicroBehavior]) -> Vec<MacroStep> {
    let mut steps: Vec<MacroStep> = Vec::new();
    for e in events {
        match steps.last_mut() {
            Some(last) if last.item == e.item => last.ops.push(e.op),
            _ => steps.push(MacroStep {
                item: e.item,
                ops: vec![e.op],
            }),
        }
    }
    steps
}

impl Session {
    /// The macro-item sequence `S^v` with per-item operation sub-sequences.
    pub fn macro_steps(&self) -> Vec<MacroStep> {
        merge_micro_behaviors(&self.events)
    }

    /// Just the macro-item ids `S^v = {v^1, …, v^n}`.
    pub fn macro_items(&self) -> Vec<ItemId> {
        self.macro_steps().into_iter().map(|s| s.item).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mb(item: ItemId, op: OpId) -> MicroBehavior {
        MicroBehavior { item, op }
    }

    #[test]
    fn paper_fig3_example() {
        // S = (v1,o1)(v2,o1)(v3,o1)(v2,o1)(v2,o2)(v3,o1)(v3,o2)(v3,o3)(v4,o1)
        let events = vec![
            mb(1, 1),
            mb(2, 1),
            mb(3, 1),
            mb(2, 1),
            mb(2, 2),
            mb(3, 1),
            mb(3, 2),
            mb(3, 3),
            mb(4, 1),
        ];
        let steps = merge_micro_behaviors(&events);
        let items: Vec<ItemId> = steps.iter().map(|s| s.item).collect();
        assert_eq!(items, vec![1, 2, 3, 2, 3, 4]);
        let ops: Vec<Vec<OpId>> = steps.iter().map(|s| s.ops.clone()).collect();
        assert_eq!(
            ops,
            vec![
                vec![1],
                vec![1],
                vec![1],
                vec![1, 2],
                vec![1, 2, 3],
                vec![1]
            ]
        );
    }

    #[test]
    fn single_event_single_step() {
        let steps = merge_micro_behaviors(&[mb(9, 4)]);
        assert_eq!(steps.len(), 1);
        assert_eq!(steps[0].item, 9);
        assert_eq!(steps[0].ops, vec![4]);
    }

    #[test]
    fn empty_session_no_steps() {
        assert!(merge_micro_behaviors(&[]).is_empty());
    }

    #[test]
    fn all_same_item_one_step() {
        let steps = merge_micro_behaviors(&[mb(5, 0), mb(5, 1), mb(5, 2)]);
        assert_eq!(steps.len(), 1);
        assert_eq!(steps[0].ops, vec![0, 1, 2]);
    }

    #[test]
    fn alternating_items_no_merging() {
        let steps = merge_micro_behaviors(&[mb(1, 0), mb(2, 0), mb(1, 0), mb(2, 0)]);
        assert_eq!(steps.len(), 4);
        assert!(steps.iter().all(|s| s.ops.len() == 1));
    }
}

#[cfg(test)]
mod randomized {
    use super::*;
    use crate::testrand::TestRand;

    fn random_events(r: &mut TestRand, max_item: u64, max_op: u64, max_len: u64) -> Vec<MicroBehavior> {
        let len = r.below(max_len);
        (0..len)
            .map(|_| MicroBehavior {
                item: r.below(max_item) as ItemId,
                op: r.below(max_op) as OpId,
            })
            .collect()
    }

    /// Concatenating the merged ops in order reproduces the original
    /// operation sequence, and the total op count is preserved.
    #[test]
    fn merging_is_lossless() {
        let mut r = TestRand::new(0x4d45_5247);
        for _ in 0..256 {
            let events = random_events(&mut r, 20, 5, 60);
            let steps = merge_micro_behaviors(&events);
            let rebuilt: Vec<MicroBehavior> = steps
                .iter()
                .flat_map(|s| s.ops.iter().map(move |&o| MicroBehavior { item: s.item, op: o }))
                .collect();
            assert_eq!(rebuilt, events);
        }
    }

    /// No two adjacent macro steps share an item.
    #[test]
    fn adjacent_steps_differ() {
        let mut r = TestRand::new(0x414a_4143);
        for _ in 0..256 {
            let events = random_events(&mut r, 5, 3, 60);
            let steps = merge_micro_behaviors(&events);
            for w in steps.windows(2) {
                assert_ne!(w[0].item, w[1].item, "events {events:?}");
            }
        }
    }
}
