//! Supervised instances.
//!
//! Following the paper's protocol (Sec. II-B and V-A-1): the prediction
//! target is the **next macro-item** `v^{n+1}`, never the next micro-behavior
//! (the last macro item usually has several micro-behaviors, so predicting at
//! the micro level would leak the answer). An [`Example`] is a session prefix
//! whose trailing macro step has been removed, plus that step's item as the
//! ground truth.

use crate::merge::merge_micro_behaviors;
use crate::types::{ItemId, Session};

/// One supervised next-item instance.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Example {
    /// The observed prefix (all micro-behaviors before the target macro item).
    pub session: Session,
    /// The ground-truth next macro-item.
    pub target: ItemId,
}

impl Example {
    /// Builds the evaluation example from a full session: strip the last
    /// macro step, predict its item.
    ///
    /// Returns `None` for sessions with fewer than two macro items (excluded
    /// from training and testing per the paper).
    pub fn from_session(session: &Session) -> Option<Example> {
        let steps = merge_micro_behaviors(&session.events);
        if steps.len() < 2 {
            return None;
        }
        let target = steps.last().expect("len >= 2").item;
        let prefix_len: usize = steps[..steps.len() - 1].iter().map(|s| s.ops.len()).sum();
        Some(Example {
            session: Session {
                id: session.id,
                events: session.events[..prefix_len].to_vec(),
            },
            target,
        })
    }

    /// Builds *augmented* training examples: one per macro-step boundary
    /// (predict `v^2` from `v^1`, `v^3` from `v^1 v^2`, …), the standard
    /// sequence-splitting augmentation of GRU4Rec+/SR-GNN.
    pub fn augmented_from_session(session: &Session) -> Vec<Example> {
        let steps = merge_micro_behaviors(&session.events);
        let mut out = Vec::new();
        let mut prefix_len = 0usize;
        for k in 0..steps.len().saturating_sub(1) {
            prefix_len += steps[k].ops.len();
            out.push(Example {
                session: Session {
                    id: session.id,
                    events: session.events[..prefix_len].to_vec(),
                },
                target: steps[k + 1].item,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::MicroBehavior;

    fn session(pairs: &[(u32, u16)]) -> Session {
        Session {
            id: 0,
            events: pairs
                .iter()
                .map(|&(i, o)| MicroBehavior { item: i, op: o })
                .collect(),
        }
    }

    #[test]
    fn strips_entire_last_macro_step() {
        // last macro item 3 has two micro-behaviors; both must be stripped.
        let s = session(&[(1, 0), (2, 0), (3, 0), (3, 1)]);
        let ex = Example::from_session(&s).unwrap();
        assert_eq!(ex.target, 3);
        assert_eq!(ex.session.items().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn rejects_single_macro_item_sessions() {
        let s = session(&[(1, 0), (1, 1), (1, 2)]);
        assert!(Example::from_session(&s).is_none());
    }

    #[test]
    fn target_differs_from_last_prefix_item() {
        // merging guarantees adjacent macro items differ, so no leakage
        let s = session(&[(1, 0), (2, 0), (1, 0)]);
        let ex = Example::from_session(&s).unwrap();
        assert_eq!(ex.target, 1);
        assert_eq!(*ex.session.items().collect::<Vec<_>>().last().unwrap(), 2);
    }

    #[test]
    fn augmentation_produces_one_example_per_transition() {
        let s = session(&[(1, 0), (2, 0), (2, 1), (3, 0)]);
        let exs = Example::augmented_from_session(&s);
        assert_eq!(exs.len(), 2);
        assert_eq!(exs[0].target, 2);
        assert_eq!(exs[0].session.len(), 1);
        assert_eq!(exs[1].target, 3);
        assert_eq!(exs[1].session.len(), 3); // includes both v2 micro-behaviors
    }

    #[test]
    fn augmentation_of_short_session_is_empty() {
        assert!(Example::augmented_from_session(&session(&[(1, 0)])).is_empty());
    }
}
