//! Corpus statistics — the numbers reported in paper Table II.

use std::collections::HashSet;

use crate::types::Session;

/// Summary statistics of a session corpus.
#[derive(Clone, Debug, PartialEq)]
pub struct CorpusStats {
    /// Number of sessions.
    pub sessions: usize,
    /// Number of distinct items.
    pub items: usize,
    /// Number of distinct operations.
    pub ops: usize,
    /// Total micro-behaviors across sessions (`# micro-behavior` in Table II).
    pub micro_behaviors: usize,
    /// Mean micro-behaviors per session.
    pub mean_session_len: f64,
    /// Mean macro items per session.
    pub mean_macro_len: f64,
    /// Fraction of sessions whose ground-truth (last macro item) also occurs
    /// earlier in the same session. The paper uses this property to explain
    /// S-POP's failure on Trivago.
    pub target_repeat_ratio: f64,
}

impl CorpusStats {
    /// Computes statistics over a corpus.
    pub fn compute(sessions: &[Session]) -> CorpusStats {
        let mut items: HashSet<u32> = HashSet::new();
        let mut ops: HashSet<u16> = HashSet::new();
        let mut micro = 0usize;
        let mut macro_total = 0usize;
        let mut repeats = 0usize;
        let mut judged = 0usize;
        for s in sessions {
            micro += s.len();
            for e in &s.events {
                items.insert(e.item);
                ops.insert(e.op);
            }
            let macro_items = s.macro_items();
            macro_total += macro_items.len();
            if macro_items.len() >= 2 {
                judged += 1;
                let target = *macro_items.last().expect("len >= 2");
                if macro_items[..macro_items.len() - 1].contains(&target) {
                    repeats += 1;
                }
            }
        }
        let n = sessions.len().max(1) as f64;
        CorpusStats {
            sessions: sessions.len(),
            items: items.len(),
            ops: ops.len(),
            micro_behaviors: micro,
            mean_session_len: micro as f64 / n,
            mean_macro_len: macro_total as f64 / n,
            target_repeat_ratio: repeats as f64 / judged.max(1) as f64,
        }
    }
}

impl std::fmt::Display for CorpusStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "# sessions        {}", self.sessions)?;
        writeln!(f, "# items           {}", self.items)?;
        writeln!(f, "# operations      {}", self.ops)?;
        writeln!(f, "# micro-behavior  {}", self.micro_behaviors)?;
        writeln!(f, "mean |S_t|        {:.2}", self.mean_session_len)?;
        writeln!(f, "mean |S^v|        {:.2}", self.mean_macro_len)?;
        write!(f, "target-repeat     {:.3}", self.target_repeat_ratio)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::MicroBehavior;

    fn session(id: u64, pairs: &[(u32, u16)]) -> Session {
        Session {
            id,
            events: pairs
                .iter()
                .map(|&(i, o)| MicroBehavior { item: i, op: o })
                .collect(),
        }
    }

    #[test]
    fn counts_distinct_items_and_ops() {
        let corpus = vec![
            session(1, &[(1, 0), (2, 1)]),
            session(2, &[(2, 0), (3, 2), (3, 2)]),
        ];
        let st = CorpusStats::compute(&corpus);
        assert_eq!(st.sessions, 2);
        assert_eq!(st.items, 3);
        assert_eq!(st.ops, 3);
        assert_eq!(st.micro_behaviors, 5);
    }

    #[test]
    fn repeat_ratio_detects_in_session_targets() {
        // session 1: target 1 seen before => repeat; session 2: target 3 not.
        let corpus = vec![
            session(1, &[(1, 0), (2, 0), (1, 0)]),
            session(2, &[(1, 0), (2, 0), (3, 0)]),
        ];
        let st = CorpusStats::compute(&corpus);
        assert!((st.target_repeat_ratio - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_corpus_is_safe() {
        let st = CorpusStats::compute(&[]);
        assert_eq!(st.sessions, 0);
        assert_eq!(st.items, 0);
        assert_eq!(st.target_repeat_ratio, 0.0);
    }

    #[test]
    fn mean_macro_len_accounts_for_merging() {
        let corpus = vec![session(1, &[(1, 0), (1, 1), (2, 0)])];
        let st = CorpusStats::compute(&corpus);
        assert!((st.mean_session_len - 3.0).abs() < 1e-9);
        assert!((st.mean_macro_len - 2.0).abs() < 1e-9);
    }
}
