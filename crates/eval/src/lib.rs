//! # embsr-eval
//!
//! Evaluation machinery for the paper's experiments:
//!
//! * [`rank_of_target`], [`hit_at_k`], [`reciprocal_rank_at_k`] — the H@K
//!   and M@K (MRR@K) measures of paper Sec. V-A-3 (eq. 21–22);
//! * [`evaluate`] — scores a [`embsr_train::Recommender`] over a test set,
//!   keeping per-session reciprocal ranks for significance testing;
//! * [`wilcoxon_signed_rank`] — the paired significance test the paper uses
//!   to report p ≪ 0.01;
//! * [`ResultsTable`] — paper-style result tables with best/second-best
//!   highlighting and the `Imp.%` column;
//! * [`run_parallel`] — the shared scoped-thread job pool (re-exported from
//!   `embsr-pool`) filling the 13-model × 3-dataset experiment grid (each
//!   job owns its model; models never cross threads).

mod evaluate;
mod metrics;
mod report;
mod table;
mod wilcoxon;

pub use embsr_pool::run_parallel;
pub use evaluate::{evaluate, Evaluation};
pub use metrics::{hit_at_k, rank_of_target, reciprocal_rank_at_k, top_k};
pub use table::ResultsTable;
pub use wilcoxon::{wilcoxon_signed_rank, WilcoxonResult};
