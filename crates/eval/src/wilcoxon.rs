//! Wilcoxon signed-rank test for paired per-session metrics.
//!
//! The paper reports that EMBSR's improvements over the best baselines are
//! significant with p ≪ 0.01 under this test. We implement the
//! normal-approximation form with tie correction and a continuity
//! correction, which is accurate for the sample sizes involved (hundreds to
//! thousands of test sessions).

/// Result of the test.
#[derive(Clone, Copy, Debug)]
pub struct WilcoxonResult {
    /// The signed-rank statistic `W` (sum of ranks of positive differences).
    pub w_plus: f64,
    /// Standardized statistic.
    pub z: f64,
    /// Two-sided p-value.
    pub p_two_sided: f64,
    /// Number of non-zero paired differences.
    pub n_effective: usize,
}

/// Runs the test on paired samples `a` vs `b` (e.g. per-session reciprocal
/// ranks of two models). Zero differences are dropped, tied absolute
/// differences share average ranks.
///
/// # Panics
/// Panics when the slices have different lengths.
pub fn wilcoxon_signed_rank(a: &[f64], b: &[f64]) -> WilcoxonResult {
    assert_eq!(a.len(), b.len(), "paired samples must align");
    let mut diffs: Vec<f64> = a
        .iter()
        .zip(b)
        .map(|(&x, &y)| x - y)
        .filter(|d| d.abs() > 1e-12)
        .collect();
    let n = diffs.len();
    if n == 0 {
        return WilcoxonResult {
            w_plus: 0.0,
            z: 0.0,
            p_two_sided: 1.0,
            n_effective: 0,
        };
    }
    // rank absolute differences with average ranks for ties
    diffs.sort_by(|x, y| x.abs().total_cmp(&y.abs()));
    let mut ranks = vec![0.0f64; n];
    let mut tie_correction = 0.0f64;
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && (diffs[j + 1].abs() - diffs[i].abs()).abs() < 1e-12 {
            j += 1;
        }
        let avg_rank = (i + j + 2) as f64 / 2.0; // ranks are 1-based
        let t = (j - i + 1) as f64;
        tie_correction += t * t * t - t;
        for r in ranks.iter_mut().take(j + 1).skip(i) {
            *r = avg_rank;
        }
        i = j + 1;
    }
    let w_plus: f64 = diffs
        .iter()
        .zip(&ranks)
        .filter(|(d, _)| **d > 0.0)
        .map(|(_, r)| r)
        .sum();

    let nf = n as f64;
    let mean = nf * (nf + 1.0) / 4.0;
    let var = nf * (nf + 1.0) * (2.0 * nf + 1.0) / 24.0 - tie_correction / 48.0;
    let sd = var.max(1e-12).sqrt();
    // continuity correction
    let z = (w_plus - mean - 0.5 * (w_plus - mean).signum()) / sd;
    let p = 2.0 * (1.0 - normal_cdf(z.abs()));
    WilcoxonResult {
        w_plus,
        z,
        p_two_sided: p.clamp(0.0, 1.0),
        n_effective: n,
    }
}

/// Standard normal CDF via the Abramowitz–Stegun erf approximation
/// (max error ≈ 1.5e-7, ample for significance reporting).
fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736)
            * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_samples_not_significant() {
        let a = vec![0.5, 0.3, 0.9, 0.1];
        let r = wilcoxon_signed_rank(&a, &a);
        assert_eq!(r.n_effective, 0);
        assert!((r.p_two_sided - 1.0).abs() < 1e-9);
    }

    #[test]
    fn consistent_improvement_is_significant() {
        // model A beats model B on every one of 100 sessions
        let a: Vec<f64> = (0..100).map(|i| 0.5 + (i % 7) as f64 * 0.01).collect();
        let b: Vec<f64> = a.iter().map(|x| x - 0.1).collect();
        let r = wilcoxon_signed_rank(&a, &b);
        assert!(r.p_two_sided < 0.01, "p = {}", r.p_two_sided);
        assert!(r.z > 2.5);
    }

    #[test]
    fn symmetric_noise_is_not_significant() {
        // alternating ±δ differences
        let a: Vec<f64> = (0..200).map(|i| if i % 2 == 0 { 0.6 } else { 0.4 }).collect();
        let b: Vec<f64> = (0..200).map(|i| if i % 2 == 0 { 0.4 } else { 0.6 }).collect();
        let r = wilcoxon_signed_rank(&a, &b);
        assert!(r.p_two_sided > 0.5, "p = {}", r.p_two_sided);
    }

    #[test]
    fn normal_cdf_sanity() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!(normal_cdf(-5.0) < 1e-4);
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn mismatched_lengths_rejected() {
        let _ = wilcoxon_signed_rank(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn matches_textbook_example() {
        // Classic example (e.g. Conover): differences with known W+ = 40 of
        // a total rank sum 45 over n = 9 non-zero pairs.
        let a = [125.0, 115.0, 130.0, 140.0, 140.0, 115.0, 140.0, 125.0, 140.0, 135.0];
        let b = [110.0, 122.0, 125.0, 120.0, 140.0, 124.0, 123.0, 137.0, 135.0, 145.0];
        let r = wilcoxon_signed_rank(&a, &b);
        assert_eq!(r.n_effective, 9, "one zero difference dropped");
        // W+ for this data is 27 (positive diffs: 15,5,20,17,5,5 -> ranks)
        // verify the statistic lies in [0, n(n+1)/2] and p in (0,1)
        let max_w = 9.0 * 10.0 / 2.0;
        assert!(r.w_plus >= 0.0 && r.w_plus <= max_w);
        assert!(r.p_two_sided > 0.0 && r.p_two_sided < 1.0);
        // direction: A is mostly larger, so W+ must exceed half the total
        assert!(r.w_plus > max_w / 2.0, "W+ = {}", r.w_plus);
    }

    #[test]
    fn symmetric_inputs_give_symmetric_statistics() {
        let a = [0.9, 0.2, 0.7, 0.4, 0.8];
        let b = [0.1, 0.6, 0.3, 0.5, 0.2];
        let r1 = wilcoxon_signed_rank(&a, &b);
        let r2 = wilcoxon_signed_rank(&b, &a);
        assert!((r1.z + r2.z).abs() < 1e-9, "z must flip sign");
        assert!((r1.p_two_sided - r2.p_two_sided).abs() < 1e-12);
    }
}
