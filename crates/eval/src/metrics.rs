//! Ranking metrics (paper eq. 21–22).

/// 1-based rank of `target` under `scores`, with *pessimistic* tie handling:
/// items scoring equal to the target are counted ahead of it. This avoids
/// inflating metrics when a model emits constant scores.
///
/// # Panics
/// Panics when `target` is out of range.
pub fn rank_of_target(scores: &[f32], target: usize) -> usize {
    let ts = scores[target];
    let mut rank = 1usize;
    for (i, &s) in scores.iter().enumerate() {
        if i != target && s >= ts {
            rank += 1;
        }
    }
    rank
}

/// H@K contribution of one session: 1 when the target ranks in the top `k`.
pub fn hit_at_k(rank: usize, k: usize) -> f64 {
    if rank <= k {
        1.0
    } else {
        0.0
    }
}

/// M@K (MRR@K) contribution: `1/rank` when within top `k`, else 0
/// (the paper zeroes reciprocal ranks beyond K).
pub fn reciprocal_rank_at_k(rank: usize, k: usize) -> f64 {
    if rank <= k {
        1.0 / rank as f64
    } else {
        0.0
    }
}

/// Indices of the `k` highest-scoring items, best first (ties broken by
/// lower index). Partial selection — O(n log k) — since `k ≪ |V|`.
pub fn top_k(scores: &[f32], k: usize) -> Vec<usize> {
    let k = k.min(scores.len());
    // simple selection via a sorted buffer of size k
    let mut best: Vec<usize> = Vec::with_capacity(k + 1);
    for (i, &s) in scores.iter().enumerate() {
        let pos = best
            .iter()
            .position(|&j| s > scores[j])
            .unwrap_or(best.len());
        if pos < k {
            best.insert(pos, i);
            best.truncate(k);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_counts_strictly_better_items() {
        let scores = [0.1, 0.9, 0.5, 0.7];
        assert_eq!(rank_of_target(&scores, 1), 1);
        assert_eq!(rank_of_target(&scores, 3), 2);
        assert_eq!(rank_of_target(&scores, 0), 4);
    }

    #[test]
    fn ties_are_pessimistic() {
        let scores = [0.5, 0.5, 0.5];
        assert_eq!(rank_of_target(&scores, 0), 3);
    }

    #[test]
    fn hit_and_mrr_respect_cutoff() {
        assert_eq!(hit_at_k(3, 5), 1.0);
        assert_eq!(hit_at_k(6, 5), 0.0);
        assert!((reciprocal_rank_at_k(4, 5) - 0.25).abs() < 1e-12);
        assert_eq!(reciprocal_rank_at_k(6, 5), 0.0);
    }

    #[test]
    fn rank_one_gives_full_credit() {
        assert_eq!(hit_at_k(1, 1), 1.0);
        assert_eq!(reciprocal_rank_at_k(1, 1), 1.0);
    }

    #[test]
    fn top_k_orders_best_first() {
        let scores = [0.1, 0.9, 0.5, 0.7];
        assert_eq!(top_k(&scores, 3), vec![1, 3, 2]);
        assert_eq!(top_k(&scores, 10), vec![1, 3, 2, 0]);
        assert!(top_k(&scores, 0).is_empty());
    }

    #[test]
    fn top_k_consistent_with_rank() {
        let scores = [0.3, 0.8, 0.2, 0.6, 0.6];
        let top = top_k(&scores, scores.len());
        for (pos, &item) in top.iter().enumerate() {
            let r = rank_of_target(&scores, item);
            // pessimistic tie handling: rank >= position+1
            assert!(r > pos, "item {item}: rank {r} < pos {}", pos + 1);
        }
    }
}

#[cfg(test)]
mod randomized {
    use super::*;

    /// SplitMix64, enough randomness for invariant tests.
    fn mix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Rank is always within [1, n] and H@n == 1.
    #[test]
    fn rank_bounds() {
        let mut s = 0x4d45_5452;
        for _ in 0..512 {
            let n = 1 + (mix(&mut s) % 49) as usize;
            let scores: Vec<f32> = (0..n)
                .map(|_| (mix(&mut s) % 2_000) as f32 / 100.0 - 10.0)
                .collect();
            let target = (mix(&mut s) % n as u64) as usize;
            let r = rank_of_target(&scores, target);
            assert!(r >= 1 && r <= scores.len(), "rank {r} of {n}");
            assert_eq!(hit_at_k(r, scores.len()), 1.0);
        }
    }

    /// MRR@K is monotone non-decreasing in K.
    #[test]
    fn mrr_monotone_in_k() {
        for rank in 1..100usize {
            let mut prev = 0.0;
            for k in 1..100 {
                let m = reciprocal_rank_at_k(rank, k);
                assert!(m >= prev, "rank {rank} k {k}");
                prev = m;
            }
        }
    }
}
