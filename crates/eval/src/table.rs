//! Paper-style result tables.

use crate::evaluate::Evaluation;

/// A metrics × models table for one dataset, rendered like the paper's
/// Table III (best score starred, second best underlined via `_x_`, and an
/// `Imp.%` column comparing the last model against the best of the rest).
pub struct ResultsTable {
    pub dataset: String,
    pub ks: Vec<usize>,
    pub evaluations: Vec<Evaluation>,
}

impl ResultsTable {
    /// Creates a table; all evaluations must share the cutoff list.
    pub fn new(dataset: &str, ks: &[usize], evaluations: Vec<Evaluation>) -> Self {
        for e in &evaluations {
            assert_eq!(e.ks, ks, "evaluation {} has different cutoffs", e.model);
        }
        ResultsTable {
            dataset: dataset.to_string(),
            ks: ks.to_vec(),
            evaluations,
        }
    }

    /// All metric rows: `("H@k"| "M@k", values per model)`.
    pub fn rows(&self) -> Vec<(String, Vec<f64>)> {
        let mut rows = Vec::new();
        for (i, &k) in self.ks.iter().enumerate() {
            rows.push((
                format!("H@{k}"),
                self.evaluations.iter().map(|e| e.hit[i]).collect(),
            ));
        }
        for (i, &k) in self.ks.iter().enumerate() {
            rows.push((
                format!("M@{k}"),
                self.evaluations.iter().map(|e| e.mrr[i]).collect(),
            ));
        }
        rows
    }

    /// Improvement (%) of the final column over the best other column for a
    /// metric row — the paper's `Imp.%`.
    pub fn improvement(values: &[f64]) -> f64 {
        let (last, rest) = values.split_last().expect("non-empty row");
        let best_rest = rest.iter().cloned().fold(f64::MIN, f64::max);
        if best_rest <= 0.0 {
            return f64::NAN;
        }
        100.0 * (last - best_rest) / best_rest
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("=== {} ===\n", self.dataset));
        out.push_str(&format!("{:<8}", "Metric"));
        for e in &self.evaluations {
            out.push_str(&format!("{:>12}", e.model));
        }
        out.push_str(&format!("{:>9}\n", "Imp.%"));
        for (name, values) in self.rows() {
            out.push_str(&format!("{name:<8}"));
            let best = values.iter().cloned().fold(f64::MIN, f64::max);
            for &v in &values {
                let mark = if (v - best).abs() < 1e-9 { "*" } else { " " };
                out.push_str(&format!("{:>11.2}{mark}", v));
            }
            let imp = Self::improvement(&values);
            if imp.is_nan() {
                out.push_str(&format!("{:>9}", "-"));
            } else {
                out.push_str(&format!("{imp:>8.2}%"));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(name: &str, hit: Vec<f64>, mrr: Vec<f64>) -> Evaluation {
        Evaluation {
            model: name.to_string(),
            ks: vec![10, 20],
            hit,
            mrr,
            ranks: vec![],
        }
    }

    #[test]
    fn improvement_relative_to_best_other() {
        let imp = ResultsTable::improvement(&[10.0, 20.0, 24.0]);
        assert!((imp - 20.0).abs() < 1e-9);
    }

    #[test]
    fn render_contains_models_and_metrics() {
        let t = ResultsTable::new(
            "JD-Appliances",
            &[10, 20],
            vec![
                eval("SR-GNN", vec![43.8, 55.3], vec![21.1, 21.9]),
                eval("EMBSR", vec![49.6, 61.6], vec![25.2, 26.1]),
            ],
        );
        let s = t.render();
        assert!(s.contains("JD-Appliances"));
        assert!(s.contains("EMBSR"));
        assert!(s.contains("H@10"));
        assert!(s.contains("M@20"));
        assert!(s.contains('%'));
    }

    #[test]
    #[should_panic(expected = "different cutoffs")]
    fn mismatched_cutoffs_rejected() {
        let mut e = eval("A", vec![1.0, 2.0], vec![1.0, 2.0]);
        e.ks = vec![5, 10];
        let _ = ResultsTable::new("X", &[10, 20], vec![e]);
    }

    #[test]
    fn rows_order_hits_then_mrr() {
        let t = ResultsTable::new(
            "X",
            &[10, 20],
            vec![eval("A", vec![1.0, 2.0], vec![0.5, 0.6])],
        );
        let names: Vec<String> = t.rows().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["H@10", "H@20", "M@10", "M@20"]);
    }
}
