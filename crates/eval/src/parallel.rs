//! A scoped-thread job pool for the experiment grid.
//!
//! Models in this workspace are intentionally single-threaded (`Rc`-based
//! autograd), so parallelism lives at the *job* level: each job constructs,
//! trains and evaluates its own model entirely inside one thread, returning
//! only plain data. This is how the harness fills a 13-model × 3-dataset
//! table on a multicore machine.

use std::sync::Mutex;

/// Runs `jobs` on up to `threads` worker threads, returning results in the
/// original job order.
///
/// Each job is a `FnOnce` producing a `Send` result; jobs themselves must be
/// `Send` (capture only `Send` data — build non-`Send` models *inside* the
/// closure).
pub fn run_parallel<T, F>(jobs: Vec<F>, threads: usize) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let threads = threads.max(1);
    let n = jobs.len();
    let queue: Mutex<Vec<(usize, F)>> = Mutex::new(jobs.into_iter().enumerate().rev().collect());
    let results: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());

    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            scope.spawn(|| loop {
                let job = queue.lock().expect("queue poisoned").pop();
                match job {
                    Some((idx, f)) => {
                        let out = f();
                        results.lock().expect("results poisoned")[idx] = Some(out);
                    }
                    None => break,
                }
            });
        }
    });

    results
        .into_inner()
        .expect("results poisoned")
        .into_iter()
        .map(|r| r.expect("job completed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_preserve_order() {
        let jobs: Vec<_> = (0..20).map(|i| move || i * i).collect();
        let out = run_parallel(jobs, 4);
        assert_eq!(out, (0..20).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_works() {
        let jobs: Vec<_> = (0..5).map(|i| move || i + 1).collect();
        assert_eq!(run_parallel(jobs, 1), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn more_threads_than_jobs_is_fine() {
        let jobs: Vec<_> = (0..2).map(|i| move || i).collect();
        assert_eq!(run_parallel(jobs, 16), vec![0, 1]);
    }

    #[test]
    fn heavy_jobs_actually_parallelize() {
        // smoke test: no deadlock with contention
        let jobs: Vec<_> = (0..8)
            .map(|i| {
                move || {
                    let mut acc = 0u64;
                    for x in 0..200_000u64 {
                        acc = acc.wrapping_add(x ^ i);
                    }
                    acc
                }
            })
            .collect();
        let out = run_parallel(jobs, 4);
        assert_eq!(out.len(), 8);
    }
}
