//! Exporting result tables as Markdown and CSV, for EXPERIMENTS.md and
//! external plotting.

use crate::table::ResultsTable;

impl ResultsTable {
    /// Renders the table as GitHub-flavored Markdown, with the best score
    /// per row in bold and the second best in italics (mirroring the
    /// paper's bold/underline convention).
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.dataset));
        out.push_str("| Metric |");
        for e in &self.evaluations {
            out.push_str(&format!(" {} |", e.model));
        }
        out.push_str(" Imp.% |\n|---|");
        for _ in &self.evaluations {
            out.push_str("---|");
        }
        out.push_str("---|\n");
        for (name, values) in self.rows() {
            out.push_str(&format!("| {name} |"));
            let mut sorted = values.clone();
            sorted.sort_by(|a, b| b.total_cmp(a));
            let best = sorted.first().copied().unwrap_or(f64::NAN);
            let second = sorted.get(1).copied().unwrap_or(f64::NAN);
            for &v in &values {
                if (v - best).abs() < 1e-9 {
                    out.push_str(&format!(" **{v:.2}** |"));
                } else if (v - second).abs() < 1e-9 {
                    out.push_str(&format!(" *{v:.2}* |"));
                } else {
                    out.push_str(&format!(" {v:.2} |"));
                }
            }
            let imp = Self::improvement(&values);
            if imp.is_nan() {
                out.push_str(" – |\n");
            } else {
                out.push_str(&format!(" {imp:+.2}% |\n"));
            }
        }
        out
    }

    /// Renders the table as CSV (`dataset,metric,model,value` long format),
    /// convenient for external plotting of the figure experiments.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("dataset,metric,model,value\n");
        for (name, values) in self.rows() {
            for (e, v) in self.evaluations.iter().zip(&values) {
                out.push_str(&format!("{},{},{},{:.4}\n", self.dataset, name, e.model, v));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::Evaluation;

    fn table() -> ResultsTable {
        let eval = |name: &str, hit: Vec<f64>, mrr: Vec<f64>| Evaluation {
            model: name.to_string(),
            ks: vec![10],
            hit,
            mrr,
            ranks: vec![],
        };
        ResultsTable::new(
            "JD-Appliances",
            &[10],
            vec![
                eval("SR-GNN", vec![43.8], vec![21.1]),
                eval("SGNN-HN", vec![47.0], vec![22.6]),
                eval("EMBSR", vec![49.6], vec![25.2]),
            ],
        )
    }

    #[test]
    fn markdown_marks_best_and_second() {
        let md = table().to_markdown();
        assert!(md.contains("**49.60**"), "best bold: {md}");
        assert!(md.contains("*47.00*"), "second italic: {md}");
        assert!(md.contains("| Metric |"));
        assert!(md.contains("Imp.%"));
    }

    #[test]
    fn markdown_has_one_row_per_metric() {
        let md = table().to_markdown();
        let data_rows = md.lines().filter(|l| l.starts_with("| H@") || l.starts_with("| M@")).count();
        assert_eq!(data_rows, 2); // H@10 and M@10
    }

    #[test]
    fn csv_long_format() {
        let csv = table().to_csv();
        assert!(csv.starts_with("dataset,metric,model,value\n"));
        // 2 metrics × 3 models = 6 data lines
        assert_eq!(csv.lines().count(), 7);
        assert!(csv.contains("JD-Appliances,M@10,EMBSR,25.2000"));
    }
}
