//! Test-set evaluation of a fitted recommender.

use embsr_sessions::{Example, Session};
use embsr_train::Recommender;

use crate::metrics::{hit_at_k, rank_of_target, reciprocal_rank_at_k};

/// The outcome of evaluating one model on one test set.
#[derive(Clone, Debug)]
pub struct Evaluation {
    /// Model name.
    pub model: String,
    /// The cutoffs evaluated.
    pub ks: Vec<usize>,
    /// H@K per cutoff, in percent (as the paper reports).
    pub hit: Vec<f64>,
    /// M@K (MRR@K) per cutoff, in percent.
    pub mrr: Vec<f64>,
    /// Per-session target ranks (for significance testing and case studies).
    pub ranks: Vec<usize>,
}

impl Evaluation {
    /// H@K for a specific cutoff.
    ///
    /// # Panics
    /// Panics when `k` was not evaluated.
    pub fn hit_at(&self, k: usize) -> f64 {
        let i = self.ks.iter().position(|&x| x == k).expect("k evaluated");
        self.hit[i]
    }

    /// M@K for a specific cutoff.
    pub fn mrr_at(&self, k: usize) -> f64 {
        let i = self.ks.iter().position(|&x| x == k).expect("k evaluated");
        self.mrr[i]
    }

    /// Per-session reciprocal ranks at cutoff `k` (for Wilcoxon pairing).
    pub fn reciprocal_ranks_at(&self, k: usize) -> Vec<f64> {
        self.ranks
            .iter()
            .map(|&r| reciprocal_rank_at_k(r, k))
            .collect()
    }
}

/// Sessions scored per [`Recommender::scores_batch`] call during evaluation.
///
/// Small enough that a batch's activations stay cache-resident, large enough
/// to amortize the per-batch item-table normalization of the batched scorers.
pub const EVAL_BATCH: usize = 32;

/// Evaluates `rec` on `test` at the given cutoffs.
///
/// Sessions whose prefix is empty are skipped (they carry no evidence).
/// Scoring goes through [`Recommender::scores_batch`] in chunks of
/// [`EVAL_BATCH`]; batched overrides are held to bitwise equality with the
/// per-session path, so the reported metrics are identical either way.
pub fn evaluate(rec: &dyn Recommender, test: &[Example], ks: &[usize]) -> Evaluation {
    assert!(!ks.is_empty(), "no cutoffs requested");
    let span = embsr_obs::span("embsr_eval", "evaluate");
    let scorable: Vec<&Example> = test.iter().filter(|ex| !ex.session.is_empty()).collect();
    let mut ranks = Vec::with_capacity(scorable.len());
    for chunk in scorable.chunks(EVAL_BATCH) {
        let _score_span =
            embsr_obs::span("embsr_eval", "score_batch").with_close_level(embsr_obs::Level::Trace);
        let sessions: Vec<&Session> = chunk.iter().map(|ex| &ex.session).collect();
        let scores = rec.scores_batch(&sessions);
        debug_assert_eq!(scores.len(), chunk.len());
        for (ex, row) in chunk.iter().zip(&scores) {
            debug_assert_eq!(row.len(), rec.num_items());
            ranks.push(rank_of_target(row, ex.target as usize));
        }
    }
    let n = ranks.len().max(1) as f64;
    let hit: Vec<f64> = ks
        .iter()
        .map(|&k| 100.0 * ranks.iter().map(|&r| hit_at_k(r, k)).sum::<f64>() / n)
        .collect();
    let mrr: Vec<f64> = ks
        .iter()
        .map(|&k| 100.0 * ranks.iter().map(|&r| reciprocal_rank_at_k(r, k)).sum::<f64>() / n)
        .collect();
    if embsr_obs::metrics::enabled() {
        for (i, &k) in ks.iter().enumerate() {
            embsr_obs::metrics::gauge_owned(format!("eval.hit_at_{k}")).set(hit[i]);
            embsr_obs::metrics::gauge_owned(format!("eval.mrr_at_{k}")).set(mrr[i]);
        }
        embsr_obs::metrics::counter("eval.sessions_scored").add(ranks.len() as u64);
    }
    embsr_obs::debug!(
        target: "embsr_eval",
        "evaluated {}: {} sessions in {:.3}s",
        rec.name(),
        ranks.len(),
        span.elapsed().as_secs_f64()
    );
    Evaluation {
        model: rec.name().to_string(),
        ks: ks.to_vec(),
        hit,
        mrr,
        ranks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use embsr_sessions::{MicroBehavior, Session};

    /// Oracle that always puts the target first if its id is even.
    struct EvenOracle {
        n: usize,
    }

    impl Recommender for EvenOracle {
        fn name(&self) -> &str {
            "EvenOracle"
        }
        fn num_items(&self) -> usize {
            self.n
        }
        fn fit(&mut self, _t: &[Example], _v: &[Example]) {}
        fn scores(&self, session: &Session) -> Vec<f32> {
            // score even items by id descending, odd items zero
            let last = session.events.last().map(|e| e.item).unwrap_or(0);
            (0..self.n)
                .map(|i| {
                    if i % 2 == 0 {
                        10.0 + (i as f32 + last as f32 * 0.0)
                    } else {
                        0.0
                    }
                })
                .collect()
        }
    }

    fn ex(items: &[u32], target: u32) -> Example {
        Example {
            session: Session {
                id: 0,
                events: items.iter().map(|&i| MicroBehavior::new(i, 0)).collect(),
            },
            target,
        }
    }

    #[test]
    fn perfect_and_failed_predictions_average() {
        let rec = EvenOracle { n: 10 };
        // target 8 = top even item (rank 1); target 1 = odd (rank > 5)
        let test = vec![ex(&[0], 8), ex(&[0], 1)];
        let e = evaluate(&rec, &test, &[1, 5]);
        assert!((e.hit_at(1) - 50.0).abs() < 1e-9);
        assert_eq!(e.ranks.len(), 2);
        assert_eq!(e.ranks[0], 1);
    }

    #[test]
    fn mrr_leq_hit() {
        let rec = EvenOracle { n: 10 };
        let test: Vec<Example> = (0..10).map(|t| ex(&[0], t)).collect();
        let e = evaluate(&rec, &test, &[5, 10]);
        for i in 0..e.ks.len() {
            assert!(e.mrr[i] <= e.hit[i] + 1e-9);
        }
    }

    #[test]
    fn reciprocal_ranks_match_ranks() {
        let rec = EvenOracle { n: 4 };
        let e = evaluate(&rec, &[ex(&[0], 2)], &[4]);
        let rr = e.reciprocal_ranks_at(4);
        assert!((rr[0] - 1.0 / e.ranks[0] as f64).abs() < 1e-12);
    }

    #[test]
    fn empty_sessions_are_skipped() {
        let rec = EvenOracle { n: 4 };
        let e = evaluate(&rec, &[ex(&[], 2), ex(&[1], 2)], &[2]);
        assert_eq!(e.ranks.len(), 1);
    }

    /// Recommender whose batched override would be caught diverging: scores
    /// depend on the session, and the test set straddles several batches.
    struct LastItemOracle {
        n: usize,
    }

    impl Recommender for LastItemOracle {
        fn name(&self) -> &str {
            "LastItemOracle"
        }
        fn num_items(&self) -> usize {
            self.n
        }
        fn fit(&mut self, _t: &[Example], _v: &[Example]) {}
        fn scores(&self, session: &Session) -> Vec<f32> {
            let last = session.events.last().map(|e| e.item).unwrap_or(0) as usize;
            (0..self.n)
                .map(|i| if i == (last + 1) % self.n { 1.0 } else { 0.0 })
                .collect()
        }
    }

    #[test]
    fn batched_evaluation_matches_per_session_evaluation() {
        let rec = LastItemOracle { n: 16 };
        // more examples than EVAL_BATCH, with a ragged final chunk
        let test: Vec<Example> = (0..(EVAL_BATCH as u32 * 2 + 7))
            .map(|i| ex(&[i % 16], (i + 1) % 16))
            .collect();
        let batched = evaluate(&rec, &test, &[1, 5, 10]);
        // ground truth: score sessions one at a time through the default path
        let mut expect = Vec::new();
        for e in &test {
            expect.push(rank_of_target(&rec.scores(&e.session), e.target as usize));
        }
        assert_eq!(batched.ranks, expect, "batching must not change ranks");
        assert!((batched.hit_at(1) - 100.0).abs() < 1e-9);
    }
}
