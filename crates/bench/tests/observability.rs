//! End-to-end tests of the telemetry stack as the harness uses it: run a
//! real (tiny) table cell with `--json` semantics and check the manifest
//! and aggregate bench table that land on disk.

use std::path::PathBuf;

use embsr_bench::{run_cell, EmbsrVariant, HarnessArgs, ModelSpec, Scale};
use embsr_obs::manifest::RunManifest;
use embsr_obs::{parse_json, JsonValue};

fn tmpdir(tag: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("embsr_obs_it_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&p).unwrap();
    p
}

fn json_args(dir: &std::path::Path) -> HarnessArgs {
    HarnessArgs {
        scale: Scale::Tiny,
        threads: 1,
        train_threads: 2,
        dim: 8,
        epochs: 2,
        seed: 3,
        repeats: 1,
        lr_override: None,
        quiet: true,
        json: true,
        out_dir: dir.to_path_buf(),
        bench_json: dir.join("BENCH_test.json"),
    }
}

#[test]
fn run_cell_writes_wellformed_manifest() {
    let dir = tmpdir("manifest");
    let args = json_args(&dir);
    args.init_telemetry();
    let dataset = args.dataset(embsr_datasets::DatasetPreset::JdAppliances);
    run_cell(
        ModelSpec::Embsr(EmbsrVariant::Full),
        &dataset,
        &[5, 10],
        &args,
    );

    // Exactly one run_<name>.json for this cell, parseable back into a
    // manifest with per-epoch losses, durations, and final metrics.
    let manifest_path = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(Result::ok)
        .map(|e| e.path())
        .find(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("run_") && n.ends_with(".json"))
        })
        .expect("run manifest written");
    let text = std::fs::read_to_string(&manifest_path).unwrap();
    let manifest = RunManifest::from_json_value(&parse_json(&text).unwrap()).unwrap();

    assert_eq!(manifest.dataset, "JD-Appliances");
    assert_eq!(manifest.model, "EMBSR");
    assert_eq!(manifest.scale, "tiny");
    assert_eq!(manifest.dim, 8);
    assert!(!manifest.epochs.is_empty(), "per-epoch stats missing");
    for e in &manifest.epochs {
        assert!(e.train_loss.is_finite() && e.train_loss > 0.0);
        assert!(e.duration_s > 0.0, "epoch duration not recorded");
        assert!(e.lr > 0.0);
    }
    assert!(manifest.fit_seconds > 0.0);
    assert!(manifest.throughput_examples_per_sec > 0.0);
    assert!(manifest.train_examples > 0 && manifest.test_examples > 0);
    let names: Vec<&str> = manifest.metrics.iter().map(|m| m.name.as_str()).collect();
    assert_eq!(names, vec!["H@5", "M@5", "H@10", "M@10"]);
    assert!(manifest.metrics.iter().all(|m| m.value.is_finite()));

    // The aggregate table holds the same cell, keyed by run.
    let table = parse_json(&std::fs::read_to_string(&args.bench_json).unwrap()).unwrap();
    let entries = table.get("entries").unwrap().as_array().unwrap();
    assert_eq!(entries.len(), 1);
    assert_eq!(
        entries[0].get("run").unwrap().as_str(),
        Some(manifest.run.as_str())
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn nonneural_cell_omits_epochs_but_keeps_metrics() {
    let dir = tmpdir("nonneural");
    let args = json_args(&dir);
    args.init_telemetry();
    let dataset = args.dataset(embsr_datasets::DatasetPreset::JdAppliances);
    run_cell(
        ModelSpec::Baseline(embsr_baselines::BaselineKind::SPop),
        &dataset,
        &[5],
        &args,
    );
    let manifest_path = dir.join("run_jd_appliances_s_pop.json");
    let listing: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    let path = if manifest_path.exists() {
        manifest_path
    } else {
        // model display name may differ; find the single run manifest
        listing
            .iter()
            .find(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("run_"))
            })
            .cloned()
            .expect("manifest written")
    };
    let m =
        RunManifest::from_json_value(&parse_json(&std::fs::read_to_string(path).unwrap()).unwrap())
            .unwrap();
    assert!(m.epochs.is_empty(), "non-neural model has no epochs");
    assert!(!m.metrics.is_empty());
    assert!(m.throughput_examples_per_sec > 0.0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn metrics_registry_observes_training_ops() {
    let dir = tmpdir("registry");
    let args = json_args(&dir);
    args.init_telemetry(); // --json turns the registry on
    let dataset = args.dataset(embsr_datasets::DatasetPreset::JdAppliances);
    run_cell(
        ModelSpec::Embsr(EmbsrVariant::Full),
        &dataset,
        &[5],
        &args,
    );
    assert!(embsr_obs::metrics::counter("tensor.ops_dispatched").get() > 0);
    assert!(embsr_obs::metrics::counter("train.batches").get() > 0);
    assert!(embsr_obs::metrics::counter("eval.sessions_scored").get() > 0);
    let snap = embsr_obs::metrics::snapshot();
    assert!(snap.iter().any(|m| m.name == "span.fit"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn jsonl_sink_captures_harness_events() {
    let dir = tmpdir("jsonl");
    let log_path = dir.join("events.jsonl");
    let sink = embsr_obs::JsonlSink::file(&log_path, "info".parse().unwrap()).unwrap();
    embsr_obs::add_sink(std::sync::Arc::new(sink));

    let args = json_args(&dir);
    args.init_telemetry();
    let dataset = args.dataset(embsr_datasets::DatasetPreset::JdAppliances);
    run_cell(
        ModelSpec::Embsr(EmbsrVariant::Full),
        &dataset,
        &[5],
        &args,
    );
    embsr_obs::clear_sinks();

    let text = std::fs::read_to_string(&log_path).unwrap();
    let lines: Vec<JsonValue> = text
        .lines()
        .map(|l| parse_json(l).expect("every JSONL line parses"))
        .collect();
    assert!(!lines.is_empty());
    // every event carries ts/level/target/message
    for ev in &lines {
        assert!(ev.get("ts_ms").and_then(JsonValue::as_f64).is_some());
        assert!(ev.get("level").and_then(JsonValue::as_str).is_some());
        assert!(ev.get("target").and_then(JsonValue::as_str).is_some());
        assert!(ev.get("message").and_then(JsonValue::as_str).is_some());
    }
    // the trainer's fit-start event made it through with its target
    assert!(lines.iter().any(|ev| {
        ev.get("target").and_then(JsonValue::as_str) == Some("embsr_train")
            && ev
                .get("message")
                .and_then(JsonValue::as_str)
                .is_some_and(|m| m.contains("fit start"))
    }));
    std::fs::remove_dir_all(&dir).ok();
}
