//! Shared machinery for the experiment binaries.

use std::path::PathBuf;

use embsr_baselines::{build_baseline, BaselineKind};
use embsr_core::{Embsr, EmbsrConfig};
use embsr_datasets::{build_dataset, Dataset, DatasetPreset, SyntheticConfig};
use embsr_eval::{evaluate, run_parallel, Evaluation, ResultsTable};
use embsr_obs::manifest::{append_bench_entry, EpochRecord, MetricRecord, RunManifest};
use embsr_train::{NeuralRecommender, Recommender, TrainConfig};

/// Experiment size: controls corpus, embedding dim and epochs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scale {
    /// Smoke-test size (CI, integration tests): seconds.
    Tiny,
    /// Default size: minutes on a laptop.
    Small,
    /// Full synthetic scale: tens of minutes.
    Full,
}

impl Scale {
    /// Lower-case name, used in CLI flags and run manifests.
    pub fn name(&self) -> &'static str {
        match self {
            Scale::Tiny => "tiny",
            Scale::Small => "small",
            Scale::Full => "full",
        }
    }

    fn dataset_factor(&self) -> f32 {
        match self {
            Scale::Tiny => 0.08,
            Scale::Small => 0.3,
            Scale::Full => 1.0,
        }
    }

    fn default_dim(&self) -> usize {
        match self {
            Scale::Tiny => 16,
            Scale::Small => 24,
            Scale::Full => 48,
        }
    }

    fn default_epochs(&self) -> usize {
        match self {
            Scale::Tiny => 2,
            Scale::Small => 10,
            Scale::Full => 14,
        }
    }
}

/// Parsed command-line options shared by all experiment binaries.
#[derive(Clone, Debug)]
pub struct HarnessArgs {
    pub scale: Scale,
    pub threads: usize,
    /// Worker threads for the data-parallel trainer (`--train-threads`);
    /// results are bitwise identical for any value, only throughput changes.
    pub train_threads: usize,
    pub dim: usize,
    pub epochs: usize,
    pub seed: u64,
    /// Number of independent training runs averaged per table cell.
    pub repeats: usize,
    /// When set, overrides the per-model learning rate (`--lr`).
    pub lr_override: Option<f32>,
    /// `--quiet`: suppress progress logging (console sink drops below warn).
    pub quiet: bool,
    /// `--json`: write a `run_<name>.json` manifest per cell plus the
    /// aggregate bench table, and enable the metrics registry.
    pub json: bool,
    /// Directory for per-run manifests (`--out-dir`, default `results`).
    pub out_dir: PathBuf,
    /// Path of the aggregate bench table (`--bench-json`, default
    /// `BENCH_table3.json`).
    pub bench_json: PathBuf,
}

impl Default for HarnessArgs {
    /// Small-scale defaults matching `parse_args` with no flags, except
    /// `threads`, which defaults to 2 instead of the machine's core count
    /// (tests construct args via `..Default::default()`).
    fn default() -> Self {
        HarnessArgs {
            scale: Scale::Small,
            threads: 2,
            train_threads: 4,
            dim: Scale::Small.default_dim(),
            epochs: Scale::Small.default_epochs(),
            seed: 17,
            repeats: 1,
            lr_override: None,
            quiet: false,
            json: false,
            out_dir: PathBuf::from("results"),
            bench_json: PathBuf::from("BENCH_table3.json"),
        }
    }
}

/// Parses `std::env::args`-style flags (see crate docs for the list).
pub fn parse_args() -> HarnessArgs {
    let args: Vec<String> = std::env::args().collect();
    let get = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let scale = match get("--scale").as_deref() {
        Some("tiny") => Scale::Tiny,
        Some("full") => Scale::Full,
        Some("small") | None => Scale::Small,
        Some(other) => panic!("unknown --scale {other}; use tiny|small|full"),
    };
    let threads = get("--threads")
        .map(|s| s.parse().expect("--threads takes a number"))
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        });
    let has = |flag: &str| args.iter().any(|a| a == flag);
    let parsed = HarnessArgs {
        scale,
        threads,
        train_threads: get("--train-threads")
            .map(|s| s.parse().expect("--train-threads takes a number"))
            .unwrap_or(4),
        dim: get("--dim")
            .map(|s| s.parse().expect("--dim takes a number"))
            .unwrap_or_else(|| scale.default_dim()),
        epochs: get("--epochs")
            .map(|s| s.parse().expect("--epochs takes a number"))
            .unwrap_or_else(|| scale.default_epochs()),
        seed: get("--seed")
            .map(|s| s.parse().expect("--seed takes a number"))
            .unwrap_or(17),
        repeats: get("--repeats")
            .map(|s| s.parse().expect("--repeats takes a number"))
            .unwrap_or(1),
        lr_override: get("--lr").map(|s| s.parse().expect("--lr takes a number")),
        quiet: has("--quiet"),
        json: has("--json"),
        out_dir: get("--out-dir").map_or_else(|| PathBuf::from("results"), PathBuf::from),
        bench_json: get("--bench-json")
            .map_or_else(|| PathBuf::from("BENCH_table3.json"), PathBuf::from),
    };
    parsed.init_telemetry();
    parsed
}

impl HarnessArgs {
    /// Wires up telemetry from the parsed flags: `EMBSR_LOG` configures the
    /// console sink (done lazily by the dispatcher), `--quiet` raises the
    /// console threshold to warn, and `--json` turns the metrics registry on
    /// so manifests can snapshot op counters.
    pub fn init_telemetry(&self) {
        embsr_obs::init_from_env("EMBSR_LOG", "info");
        if self.quiet {
            embsr_obs::set_console_filter("warn".parse().expect("static filter"));
        }
        if self.json {
            embsr_obs::metrics::set_enabled(true);
        }
    }

    /// Dataset for a preset at this scale.
    pub fn dataset(&self, preset: DatasetPreset) -> Dataset {
        let cfg = SyntheticConfig::preset(preset).scaled(self.scale.dataset_factor());
        build_dataset(&cfg)
    }

    /// The shared training configuration.
    pub fn train_config(&self) -> TrainConfig {
        TrainConfig {
            epochs: self.epochs,
            batch_size: 64,
            lr: 8e-3,
            seed: self.seed,
            val_fraction: 0.5,
            ..TrainConfig::default()
        }
    }
}

/// EMBSR model variants (paper Secs. V-C/D/E/F and the supplement).
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum EmbsrVariant {
    Full,
    NoSelfAttention,
    NoGnn,
    NoFusion,
    SgnnSelf,
    SgnnSeqSelf,
    RnnSelf,
    SgnnAbsSelf,
    SgnnDyadic,
    FixedBeta(f32),
    /// The future-work extension: learned per-operation importance.
    OpWeighted,
}

impl EmbsrVariant {
    /// Builds the variant's configuration.
    pub fn config(&self, num_items: usize, num_ops: usize, dim: usize) -> EmbsrConfig {
        match *self {
            EmbsrVariant::Full => EmbsrConfig::full(num_items, num_ops, dim),
            EmbsrVariant::NoSelfAttention => EmbsrConfig::ablation_ns(num_items, num_ops, dim),
            EmbsrVariant::NoGnn => EmbsrConfig::ablation_ng(num_items, num_ops, dim),
            EmbsrVariant::NoFusion => EmbsrConfig::ablation_nf(num_items, num_ops, dim),
            EmbsrVariant::SgnnSelf => EmbsrConfig::sgnn_self(num_items, num_ops, dim),
            EmbsrVariant::SgnnSeqSelf => EmbsrConfig::sgnn_seq_self(num_items, num_ops, dim),
            EmbsrVariant::RnnSelf => EmbsrConfig::rnn_self(num_items, num_ops, dim),
            EmbsrVariant::SgnnAbsSelf => EmbsrConfig::sgnn_abs_self(num_items, num_ops, dim),
            EmbsrVariant::SgnnDyadic => EmbsrConfig::sgnn_dyadic(num_items, num_ops, dim),
            EmbsrVariant::FixedBeta(b) => EmbsrConfig::fixed_beta(num_items, num_ops, dim, b),
            EmbsrVariant::OpWeighted => EmbsrConfig::full_op_weighted(num_items, num_ops, dim),
        }
    }
}

/// A model column in an experiment table.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum ModelSpec {
    Baseline(BaselineKind),
    Embsr(EmbsrVariant),
}

impl ModelSpec {
    /// The Table III column list: 11 baselines + EMBSR.
    pub fn table3() -> Vec<ModelSpec> {
        let mut specs: Vec<ModelSpec> = BaselineKind::table3()
            .into_iter()
            .map(ModelSpec::Baseline)
            .collect();
        specs.push(ModelSpec::Embsr(EmbsrVariant::Full));
        specs
    }
}

/// Per-model learning rate, standing in for the paper's per-model grid
/// search over [0.001, 0.01]. Values were selected on validation data at
/// `--scale small`; see EXPERIMENTS.md.
pub fn learning_rate(spec: ModelSpec) -> f32 {
    match spec {
        // hierarchical GRUs converge slowly; the grid's top value
        ModelSpec::Baseline(BaselineKind::Hup) => 1.2e-2,
        _ => 8e-3,
    }
}

/// Builds an untrained recommender for a spec against a dataset.
pub fn build_recommender(spec: ModelSpec, dataset: &Dataset, args: &HarnessArgs) -> Box<dyn Recommender> {
    let mut cfg = args.train_config();
    cfg.lr = args.lr_override.unwrap_or_else(|| learning_rate(spec));
    match spec {
        ModelSpec::Baseline(kind) => build_baseline(
            kind,
            dataset.num_items,
            dataset.num_ops,
            args.dim,
            args.seed,
            &cfg,
        ),
        ModelSpec::Embsr(variant) => {
            let mut mc = variant.config(dataset.num_items, dataset.num_ops, args.dim);
            mc.seed = args.seed;
            mc.max_len = cfg.max_session_len;
            Box::new(NeuralRecommender::new(Embsr::new(mc), cfg))
        }
    }
}

/// Serializes concurrent read-modify-write cycles on the aggregate bench
/// table when `run_table` fills cells from worker threads.
static BENCH_TABLE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Trains and evaluates one (model, dataset) cell. When `args.repeats > 1`
/// the cell is retrained with derived seeds and the H@K / M@K metrics are
/// averaged (per-session ranks are kept from the first run so significance
/// tests stay paired).
///
/// With `args.json` the cell additionally writes a run manifest to
/// `args.out_dir` and upserts itself into the `args.bench_json` table;
/// timing and per-epoch statistics come from the first repeat.
pub fn run_cell(spec: ModelSpec, dataset: &Dataset, ks: &[usize], args: &HarnessArgs) -> Evaluation {
    let cell_span = embsr_obs::span("embsr_bench", "run_cell");
    let repeats = args.repeats.max(1);
    let mut first: Option<Evaluation> = None;
    let mut hit_acc = vec![0.0f64; ks.len()];
    let mut mrr_acc = vec![0.0f64; ks.len()];
    let mut model_name = String::new();
    let mut fit_seconds = 0.0f64;
    let mut eval_seconds = 0.0f64;
    let mut epochs: Vec<EpochRecord> = Vec::new();
    let mut best_epoch = 0usize;
    let mut early_stopped = false;
    for r in 0..repeats {
        let run_args = HarnessArgs {
            seed: args.seed + 1000 * r as u64,
            ..args.clone()
        };
        let mut rec = build_recommender(spec, dataset, &run_args);
        let fit_span = embsr_obs::span("embsr_bench", "fit");
        rec.fit(&dataset.train, &dataset.val);
        let fit_s = fit_span.elapsed().as_secs_f64();
        drop(fit_span);
        let eval_span = embsr_obs::span("embsr_bench", "evaluate");
        let e = evaluate(rec.as_ref(), &dataset.test, ks);
        let eval_s = eval_span.elapsed().as_secs_f64();
        drop(eval_span);
        if r == 0 {
            model_name = rec.name().to_string();
            fit_seconds = fit_s;
            eval_seconds = eval_s;
            if let Some(report) = rec.train_report() {
                epochs = report
                    .epochs
                    .iter()
                    .map(|s| EpochRecord {
                        epoch: s.epoch,
                        train_loss: s.train_loss as f64,
                        val_loss: s.val_loss as f64,
                        duration_s: s.duration_s,
                        grad_norm: s.grad_norm as f64,
                        lr: s.lr as f64,
                    })
                    .collect();
                best_epoch = report.best_epoch;
                early_stopped = report.early_stopped;
            }
        }
        for (a, v) in hit_acc.iter_mut().zip(&e.hit) {
            *a += v;
        }
        for (a, v) in mrr_acc.iter_mut().zip(&e.mrr) {
            *a += v;
        }
        first.get_or_insert(e);
    }
    let mut out = first.expect("repeats >= 1");
    out.hit = hit_acc.iter().map(|v| v / repeats as f64).collect();
    out.mrr = mrr_acc.iter().map(|v| v / repeats as f64).collect();
    embsr_obs::info!(
        target: "embsr_bench",
        "cell {} × {}: H@20={:.2} fit={:.2}s eval={:.2}s",
        dataset.name,
        model_name,
        out.hit.last().copied().unwrap_or(f64::NAN),
        fit_seconds,
        eval_seconds
    );
    if args.json {
        // Examples seen per second of training: one pass for the non-neural
        // methods, one per completed epoch otherwise.
        let passes = epochs.len().max(1) as f64;
        let manifest = RunManifest {
            run: embsr_obs::manifest::sanitize(&format!("{}_{}", dataset.name, model_name)),
            dataset: dataset.name.clone(),
            model: model_name,
            scale: args.scale.name().to_string(),
            dim: args.dim,
            epochs_requested: args.epochs,
            seed: args.seed,
            repeats,
            train_examples: dataset.train.len(),
            val_examples: dataset.val.len(),
            test_examples: dataset.test.len(),
            num_items: dataset.num_items,
            num_ops: dataset.num_ops,
            epochs,
            best_epoch,
            early_stopped,
            fit_seconds,
            eval_seconds,
            throughput_examples_per_sec: dataset.train.len() as f64 * passes
                / fit_seconds.max(1e-9),
            cores_available: embsr_obs::manifest::cores_available(),
            git_revision: embsr_obs::manifest::git_revision(),
            // harness runs train + evaluate on the bitwise training tier;
            // serving benches record "simd" and the served precision instead
            kernel_tier: embsr_tensor::kernels::active_tier().name().to_string(),
            simd_lanes: embsr_tensor::kernels::simd_lanes(),
            snapshot_precision: String::new(),
            metrics: ks
                .iter()
                .enumerate()
                .flat_map(|(i, &k)| {
                    [
                        MetricRecord {
                            name: format!("H@{k}"),
                            value: out.hit[i],
                        },
                        MetricRecord {
                            name: format!("M@{k}"),
                            value: out.mrr[i],
                        },
                    ]
                })
                .collect(),
        };
        let _guard = BENCH_TABLE_LOCK.lock().expect("bench table lock");
        match manifest.write(&args.out_dir) {
            Ok(path) => embsr_obs::debug!(
                target: "embsr_bench",
                "wrote manifest {}",
                path.display()
            ),
            Err(e) => embsr_obs::warn!(target: "embsr_bench", "manifest write failed: {e}"),
        }
        if let Err(e) = append_bench_entry(&args.bench_json, &manifest) {
            embsr_obs::warn!(target: "embsr_bench", "bench table update failed: {e}");
        }
    }
    drop(cell_span);
    out
}

/// Fills a whole table (one dataset, many models) in parallel.
pub fn run_table(
    dataset: &Dataset,
    specs: &[ModelSpec],
    ks: &[usize],
    args: &HarnessArgs,
) -> ResultsTable {
    let _span = embsr_obs::span("embsr_bench", "run_table");
    embsr_obs::info!(
        target: "embsr_bench",
        "table {}: {} models on {} threads",
        dataset.name,
        specs.len(),
        args.threads
    );
    let jobs: Vec<_> = specs
        .iter()
        .map(|&spec| {
            let args = args.clone();
            move || run_cell(spec, dataset, ks, &args)
        })
        .collect();
    let evaluations = run_parallel(jobs, args.threads);
    ResultsTable::new(&dataset.name, ks, evaluations)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_args() -> HarnessArgs {
        HarnessArgs {
            scale: Scale::Tiny,
            threads: 2,
            train_threads: 2,
            dim: 8,
            epochs: 1,
            seed: 3,
            repeats: 1,
            lr_override: None,
            quiet: true,
            json: false,
            out_dir: PathBuf::from("results"),
            bench_json: PathBuf::from("BENCH_table3.json"),
        }
    }

    #[test]
    fn dataset_builds_at_tiny_scale() {
        let d = tiny_args().dataset(DatasetPreset::JdAppliances);
        assert!(d.train.len() > 50, "train too small: {}", d.train.len());
        assert!(d.num_items > 10);
    }

    #[test]
    fn run_cell_works_for_nonneural_and_embsr() {
        let args = tiny_args();
        let d = args.dataset(DatasetPreset::JdAppliances);
        let e1 = run_cell(ModelSpec::Baseline(BaselineKind::SPop), &d, &[5, 10], &args);
        assert_eq!(e1.ks, vec![5, 10]);
        assert!(e1.hit_at(10) >= e1.hit_at(5));
        let e2 = run_cell(ModelSpec::Embsr(EmbsrVariant::Full), &d, &[5, 10], &args);
        assert!(e2.hit_at(10) >= 0.0);
    }

    #[test]
    fn table3_has_twelve_columns() {
        assert_eq!(ModelSpec::table3().len(), 12);
        assert_eq!(
            *ModelSpec::table3().last().unwrap(),
            ModelSpec::Embsr(EmbsrVariant::Full)
        );
    }
}
