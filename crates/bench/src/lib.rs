//! # embsr-bench
//!
//! The experiment harness: one binary per table/figure of the paper (see
//! `src/bin/`), plus micro-benchmarks on the `embsr-obs` bench harness
//! (see `benches/`).
//!
//! Every binary accepts the same flags:
//!
//! ```text
//! --scale tiny|small|full   experiment size (default: small)
//! --threads N               parallel jobs (default: available cores)
//! --train-threads N         data-parallel trainer workers (default: 4)
//! --dim N                   embedding size override
//! --epochs N                training epochs override
//! --seed N                  RNG seed override
//! --repeats N               training runs averaged per cell (default: 1)
//! --lr X                    learning-rate override
//! --quiet                   progress logging off (console sink at warn)
//! --json                    write run manifests + aggregate bench table
//! --out-dir DIR             manifest directory (default: results)
//! --bench-json PATH         aggregate table (default: BENCH_table3.json)
//! ```
//!
//! Console verbosity is controlled by `EMBSR_LOG` (e.g.
//! `EMBSR_LOG=debug,embsr_train=trace`); see the `embsr-obs` crate docs.
//!
//! Absolute numbers differ from the paper (synthetic data, CPU scale); the
//! harness reproduces the *shape* of every result: orderings, relative
//! improvements and crossovers. See EXPERIMENTS.md for paper-vs-measured.

pub mod harness;

pub use harness::{
    build_recommender, learning_rate, parse_args, run_cell, run_table, EmbsrVariant, HarnessArgs,
    ModelSpec, Scale,
};
