//! # embsr-bench
//!
//! The experiment harness: one binary per table/figure of the paper (see
//! `src/bin/`), plus Criterion micro-benchmarks (see `benches/`).
//!
//! Every binary accepts the same flags:
//!
//! ```text
//! --scale tiny|small|full   experiment size (default: small)
//! --threads N               parallel jobs (default: available cores)
//! --dim N                   embedding size override
//! --epochs N                training epochs override
//! --seed N                  RNG seed override
//! ```
//!
//! Absolute numbers differ from the paper (synthetic data, CPU scale); the
//! harness reproduces the *shape* of every result: orderings, relative
//! improvements and crossovers. See EXPERIMENTS.md for paper-vs-measured.

pub mod harness;

pub use harness::{
    build_recommender, learning_rate, parse_args, run_cell, run_table, EmbsrVariant, HarnessArgs,
    ModelSpec, Scale,
};
