//! Experiment P1 — data-parallel training throughput.
//!
//! Trains full EMBSR on JD-Computers with the [`embsr_train::ParallelTrainer`]
//! at every power-of-two thread count up to `--train-threads`, verifying on
//! the way that the final parameters are bitwise identical at every count
//! (the determinism contract), and records per-count throughput to
//! `results/parallel_t<T>.json` plus an aggregate `BENCH_parallel.json`.
//!
//! Speedups are only observable when the container actually has cores to
//! spare — the `cores_available` field in every row records what the run
//! had, so numbers from single-core CI are not mistaken for a scaling
//! regression.

use embsr_bench::parse_args;
use embsr_core::{Embsr, EmbsrConfig};
use embsr_datasets::DatasetPreset;
use embsr_obs::JsonValue;
use embsr_tensor::export_params;
use embsr_train::{ParallelTrainer, SessionModel, TrainConfig};

fn main() {
    let args = parse_args();
    let dataset = args.dataset(DatasetPreset::JdComputers);
    let cores_available = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut counts = vec![1usize];
    while counts.last().copied().unwrap_or(1) * 2 <= args.train_threads.max(1) {
        counts.push(counts.last().copied().unwrap_or(1) * 2);
    }

    let mcfg = {
        let mut mc = EmbsrConfig::full(dataset.num_items, dataset.num_ops, args.dim);
        mc.seed = args.seed;
        mc
    };
    let passes = args.epochs.max(1) as f64;
    println!(
        "parallel scaling: {} · dim={} · epochs={} · threads {:?} · {} core(s) available",
        dataset.name, args.dim, args.epochs, counts, cores_available
    );

    let mut baseline_bits: Option<Vec<u32>> = None;
    let mut t1_seconds = f64::NAN;
    let mut rows: Vec<JsonValue> = Vec::new();
    for &threads in &counts {
        let tcfg = TrainConfig {
            epochs: args.epochs,
            batch_size: 64,
            lr: args.lr_override.unwrap_or(8e-3),
            seed: args.seed,
            val_fraction: 0.5,
            patience: None,
            train_threads: threads,
            ..TrainConfig::default()
        };
        let model = Embsr::new(mcfg.clone());
        let fit_span = embsr_obs::span("embsr_bench", "parallel_fit");
        let report = ParallelTrainer::new(tcfg).fit(
            &model,
            || Embsr::new(mcfg.clone()),
            &dataset.train,
            &dataset.val,
        );
        let fit_seconds = fit_span.elapsed().as_secs_f64();
        drop(fit_span);

        let bits: Vec<u32> = export_params(&model.parameters())
            .iter()
            .map(|x| x.to_bits())
            .collect();
        match &baseline_bits {
            None => {
                baseline_bits = Some(bits);
                t1_seconds = fit_seconds;
            }
            Some(base) => assert_eq!(
                base, &bits,
                "thread-invariance violated at {threads} threads"
            ),
        }

        let examples_per_sec =
            dataset.train.len() as f64 * passes / fit_seconds.max(1e-9);
        let speedup = t1_seconds / fit_seconds.max(1e-9);
        println!(
            "  T={threads}: fit={fit_seconds:.2}s · {examples_per_sec:.0} ex/s · \
             speedup vs T=1: {speedup:.2}× · final_train_loss={:.4}",
            report.final_train_loss()
        );
        let row = JsonValue::object(vec![
            ("experiment", JsonValue::String("parallel_scaling".into())),
            ("dataset", JsonValue::String(dataset.name.clone())),
            ("model", JsonValue::String("EMBSR".into())),
            ("threads", JsonValue::Number(threads as f64)),
            ("grad_shards", JsonValue::Number(8.0)),
            ("epochs", JsonValue::Number(args.epochs as f64)),
            ("dim", JsonValue::Number(args.dim as f64)),
            ("seed", JsonValue::Number(args.seed as f64)),
            ("train_examples", JsonValue::Number(dataset.train.len() as f64)),
            ("fit_seconds", JsonValue::Number(fit_seconds)),
            ("examples_per_sec", JsonValue::Number(examples_per_sec)),
            ("speedup_vs_t1", JsonValue::Number(speedup)),
            ("cores_available", JsonValue::Number(cores_available as f64)),
            (
                "final_train_loss",
                JsonValue::Number(report.final_train_loss() as f64),
            ),
            (
                "params_bitwise_equal_t1",
                JsonValue::Bool(true), // asserted above; recorded for readers
            ),
        ]);
        if args.json {
            if let Err(e) = std::fs::create_dir_all(&args.out_dir) {
                embsr_obs::warn!(target: "exp::parallel", "out dir: {e}");
            }
            let path = args.out_dir.join(format!("parallel_t{threads}.json"));
            if let Err(e) = std::fs::write(&path, row.to_json() + "\n") {
                embsr_obs::warn!(target: "exp::parallel", "row write failed: {e}");
            }
        }
        rows.push(row);
    }

    if args.json {
        let table = JsonValue::object(vec![
            ("bench", JsonValue::String("parallel_scaling".into())),
            ("cores_available", JsonValue::Number(cores_available as f64)),
            ("rows", JsonValue::Array(rows)),
        ]);
        let path = std::path::Path::new("BENCH_parallel.json");
        match std::fs::write(path, table.to_json() + "\n") {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => embsr_obs::warn!(target: "exp::parallel", "bench table: {e}"),
        }
    }
    println!(
        "Shape to verify: identical final losses/params at every T (asserted); \
         examples_per_sec grows with T up to the available cores."
    );
}
