//! Experiment T3 — paper Table III: overall performance of all methods on
//! the three datasets at K = 5, 10, 20 (H@K and M@K), with the `Imp.%`
//! column and a Wilcoxon significance test of EMBSR against the best
//! baseline.

use embsr_bench::{parse_args, run_table, ModelSpec};
use embsr_datasets::DatasetPreset;
use embsr_eval::wilcoxon_signed_rank;

fn main() {
    let args = parse_args();
    let ks = [5usize, 10, 20];
    let specs = ModelSpec::table3();

    for preset in DatasetPreset::all() {
        let dataset = args.dataset(preset);
        embsr_obs::info!(
            target: "exp::table3",
            "{}: {} train / {} test examples, {} items — training {} models…",
            dataset.name,
            dataset.train.len(),
            dataset.test.len(),
            dataset.num_items,
            specs.len()
        );
        let table = run_table(&dataset, &specs, &ks, &args);
        println!("{}", table.render());

        // significance: EMBSR (last column) vs best baseline by M@20
        let embsr = table.evaluations.last().expect("non-empty");
        let best_baseline = table.evaluations[..table.evaluations.len() - 1]
            .iter()
            .max_by(|a, b| a.mrr_at(20).total_cmp(&b.mrr_at(20)))
            .expect("baselines present");
        let w = wilcoxon_signed_rank(
            &embsr.reciprocal_ranks_at(20),
            &best_baseline.reciprocal_ranks_at(20),
        );
        println!(
            "Wilcoxon signed-rank (EMBSR vs {} on M@20): z = {:.2}, p = {:.2e}, n = {}\n",
            best_baseline.model, w.z, w.p_two_sided, w.n_effective
        );
    }
    println!("Shape to verify against the paper: EMBSR first; SGNN-HN / MKM-SR next;");
    println!("GNN models above RNN/attention models; SKNN behind the neural methods;");
    println!("S-POP ≈ 0 on Trivago.");
}
