//! Hyper-parameter grid search on the validation set — the protocol of
//! paper Sec. V-A-4 ("tuned on the validation set via grid search", learning
//! rate in [0.001 … 0.01]).
//!
//! ```bash
//! cargo run --release -p embsr-bench --bin tune_grid -- --scale tiny
//! ```
//!
//! Prints validation M@20 for every (model, lr) cell; the per-model defaults
//! baked into `embsr_bench::harness::learning_rate` were selected with this
//! tool.

use embsr_baselines::BaselineKind;
use embsr_bench::{build_recommender, parse_args, EmbsrVariant, ModelSpec};
use embsr_datasets::DatasetPreset;
use embsr_eval::evaluate;

fn main() {
    let mut args = parse_args();
    let dataset = args.dataset(DatasetPreset::JdAppliances);
    let grid = [1e-3f32, 3e-3, 5e-3, 8e-3, 1.2e-2];
    let specs: Vec<ModelSpec> = BaselineKind::all()
        .into_iter()
        .filter(|k| !matches!(k, BaselineKind::SPop | BaselineKind::Sknn | BaselineKind::Stan))
        .map(ModelSpec::Baseline)
        .chain([ModelSpec::Embsr(EmbsrVariant::Full)])
        .collect();

    print!("{:<12}", "model");
    for lr in grid {
        print!("{lr:>10}");
    }
    println!();
    for spec in specs {
        let mut name = String::new();
        let mut row = String::new();
        for lr in grid {
            args.lr_override = Some(lr);
            let mut rec = build_recommender(spec, &dataset, &args);
            name = rec.name().to_string();
            embsr_obs::debug!(target: "exp::tune", "fitting {name} at lr={lr}");
            rec.fit(&dataset.train, &dataset.val);
            let e = evaluate(rec.as_ref(), &dataset.val, &[20]);
            row.push_str(&format!("{:>10.2}", e.mrr_at(20)));
        }
        println!("{name:<12}{row}");
    }
    println!("\n(validation M@20; pick the argmax per row)");
}
