//! Experiment S1 — supplemental Table I: macro-behavior baselines on
//! *single-operation* item sequences.
//!
//! The macro baselines (BERT4Rec, SGNN-HN) see only click-type events, while
//! EMBSR keeps the full micro-behavior stream; ground truths stay identical,
//! so the comparison is fair.

use embsr_baselines::BaselineKind;
use embsr_bench::{parse_args, run_cell, EmbsrVariant, ModelSpec};
use embsr_datasets::{single_op_view, DatasetPreset};
use embsr_eval::ResultsTable;

fn main() {
    let args = parse_args();
    let ks = [5usize, 10, 20];
    for preset in DatasetPreset::all() {
        let dataset = args.dataset(preset);
        let clicks_only = single_op_view(&dataset);
        embsr_obs::info!(
            target: "exp::suppl1",
            "{}: single-op view keeps {}/{} test examples",
            dataset.name,
            clicks_only.test.len(),
            dataset.test.len()
        );

        // macro baselines on the click-only view; EMBSR on the full view.
        let bert = run_cell(
            ModelSpec::Baseline(BaselineKind::Bert4Rec),
            &clicks_only,
            &ks,
            &args,
        );
        let sgnn = run_cell(
            ModelSpec::Baseline(BaselineKind::SgnnHn),
            &clicks_only,
            &ks,
            &args,
        );
        let embsr = run_cell(ModelSpec::Embsr(EmbsrVariant::Full), &dataset, &ks, &args);
        let table = ResultsTable::new(&dataset.name, &ks, vec![bert, sgnn, embsr]);
        println!("{}", table.render());
    }
    println!("Shape to verify (Suppl. Table I): the single-operation view does not close");
    println!("the gap — EMBSR, which exploits every operation, still leads, with the");
    println!("largest margins on the Trivago-style data.");
}
