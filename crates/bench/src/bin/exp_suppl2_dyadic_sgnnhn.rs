//! Experiment S2 — supplemental Table II: isolating the dyadic encoding on
//! the best macro baseline.
//!
//! Columns: SGNN-HN, EMBSR-Dyadic (= SGNN-Dyadic: the dyadic self-attention
//! grafted on the star GNN, without the op GRU), and full EMBSR, on the two
//! JD datasets at K = 5, 10, 20.

use embsr_baselines::BaselineKind;
use embsr_bench::{parse_args, run_table, EmbsrVariant, ModelSpec};
use embsr_datasets::DatasetPreset;

fn main() {
    let args = parse_args();
    let ks = [5usize, 10, 20];
    let specs = [
        ModelSpec::Baseline(BaselineKind::SgnnHn),
        ModelSpec::Embsr(EmbsrVariant::SgnnDyadic),
        ModelSpec::Embsr(EmbsrVariant::Full),
    ];
    for preset in [DatasetPreset::JdAppliances, DatasetPreset::JdComputers] {
        let dataset = args.dataset(preset);
        embsr_obs::info!(target: "exp::suppl2", "{} — 3 models…", dataset.name);
        let table = run_table(&dataset, &specs, &ks, &args);
        println!("{}", table.render());
    }
    println!("Shape to verify (Suppl. Table II): adding dyadic encoding to the star GNN");
    println!("(EMBSR-Dyadic) lifts it over SGNN-HN, especially on M@K; the full multigraph");
    println!("+ GRU aggregation (EMBSR) adds a further margin.");
}
