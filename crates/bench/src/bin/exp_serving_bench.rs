//! Experiment S1 — serving-path throughput and latency.
//!
//! Scores a fixed set of synthetic session prefixes with an untrained
//! full EMBSR model through four paths:
//!
//! 1. `per_session` — the pre-serving eval path: one taped
//!    `Recommender::scores` call per session;
//! 2. `frozen_batch1` — the tape-free [`FrozenModel`] path at batch 1
//!    (isolates the tape overhead from the batching win);
//! 3. `frozen_batch8` / `frozen_batch32` — the batched tape-free path
//!    (amortizes the per-batch item-table normalization across rows);
//! 4. `engine` — end-to-end through the micro-batching engine on pool
//!    workers, with request latency (p50/p95/p99) and queue depth
//!    (p95/max) recorded into `embsr_obs` histograms and reported.
//!
//! The frozen and engine paths are additionally swept across kernel tiers
//! (`packed`, the bitwise training tier, vs `simd`, the vectorized serving
//! default) and across snapshot precisions (`f32` vs `bf16`), so the bench
//! records both the vectorized tier's end-to-end multiplier
//! (`simd_engine` in the baseline) and the reduced-precision snapshot's
//! size ratio.
//!
//! Writes `results/serving.json` plus the aggregate `BENCH_serving.json`.
//! The CI serving job runs `--check-baseline crates/bench/serving_baseline.json`:
//! the batched-vs-per-session **throughput ratios** (machine-portable,
//! unlike raw sessions/s) are compared against the checked-in baseline and
//! the run exits non-zero when any ratio regresses by more than the
//! baseline's tolerance (15%). `--write-baseline <path>` regenerates it.
//!
//! `--reference-engine <sessions/s>` embeds the engine throughput of a
//! pre-change build measured on the same machine; the artifact then carries
//! the cross-build `engine_vs_reference` multiplier alongside the within-run
//! ratios (it is informational — cross-build numbers cannot be revalidated
//! by `--check-baseline`).
//!
//! `EMBSR_BENCH_QUICK=1` shrinks the model and the session set ~10× for
//! smoke runs; the ratios stay meaningful because every path shrinks
//! together.

use std::path::PathBuf;

use embsr_bench::parse_args;
use embsr_core::{Embsr, EmbsrConfig};
use embsr_obs::JsonValue;
use embsr_serve::{
    serve, EngineConfig, FrozenModel, KernelTier, Precision, ScoreBatch, METRIC_BATCH_SESSIONS,
    METRIC_QUEUE_DEPTH, METRIC_REQUEST_LATENCY_US,
};
use embsr_sessions::{MicroBehavior, Session};
use embsr_train::{NeuralRecommender, Recommender, TrainConfig};

/// How much a throughput ratio may fall below the checked-in baseline
/// before the regression check fails.
const REGRESSION_TOLERANCE: f64 = 0.15;

/// Micro-behavior operations in the synthetic vocabulary.
const NUM_OPS: usize = 8;

/// Synthetic session prefixes with mixed lengths (2–9 micro-behaviors).
fn make_sessions(n: usize, vocab: usize, seed: u64) -> Vec<Session> {
    (0..n as u64)
        .map(|i| {
            let len = 2 + ((i * 11 + seed) % 8) as usize;
            Session {
                id: i,
                events: (0..len)
                    .map(|j| {
                        let item = ((i * 131 + j as u64 * 17 + seed) % vocab as u64) as u32;
                        let op = ((i * 3 + j as u64) % NUM_OPS as u64) as u16;
                        MicroBehavior::new(item, op)
                    })
                    .collect(),
            }
        })
        .collect()
}

/// Sessions per second for `passes` full sweeps of `work` over `sessions`.
fn throughput(label: &str, sessions: usize, passes: usize, mut work: impl FnMut()) -> f64 {
    work(); // warm-up: fills caches and the tensor buffer pool
    let span = embsr_obs::span("embsr_bench", "serving_path");
    for _ in 0..passes {
        work();
    }
    let secs = span.elapsed().as_secs_f64();
    let per_sec = (sessions * passes) as f64 / secs;
    println!("  {label}: {per_sec:.1} sessions/s ({passes} passes over {sessions} sessions)");
    per_sec
}

fn main() {
    let args = parse_args();
    let argv: Vec<String> = std::env::args().collect();
    let flag_value = |flag: &str| {
        argv.iter()
            .position(|a| a == flag)
            .and_then(|i| argv.get(i + 1).cloned())
            .map(PathBuf::from)
    };
    let check_baseline = flag_value("--check-baseline");
    let write_baseline = flag_value("--write-baseline");
    // Engine throughput of a pre-change build measured on the same machine
    // (sessions/s). Cross-build ratios can't be recomputed inside one run,
    // so this is recorded in the JSON artifact for context rather than
    // checked against the baseline.
    let reference_engine: Option<f64> = flag_value("--reference-engine")
        .and_then(|p| p.to_string_lossy().parse().ok());
    let quick = std::env::var("EMBSR_BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty());

    // A serving-scale vocabulary: the per-session path re-normalizes and
    // re-transposes the whole item table every call, which is exactly the
    // work the batched path amortizes — the bigger |V| is relative to the
    // per-session encoder work, the more the batch wins (production tables
    // are far larger still).
    let (vocab, dim, n_sessions, passes) = if quick {
        (1024, 16, 64, 1)
    } else {
        (8192, 48, 256, 3)
    };
    // The taped per-session path is the slowest; a subset keeps its
    // measurement time bounded while staying statistically comfortable.
    let n_single = n_sessions.min(64);
    let max_len = 40;
    let workers = args.threads.clamp(1, 4);

    println!(
        "serving bench: EMBSR |V|={vocab} d={dim} · {n_sessions} sessions · \
         engine workers={workers} · quick={quick} · seed={}",
        args.seed
    );
    embsr_obs::metrics::set_enabled(true);

    let mut cfg = EmbsrConfig::full(vocab, NUM_OPS, dim);
    cfg.seed = args.seed;
    let train_cfg = TrainConfig {
        max_session_len: max_len,
        ..TrainConfig::fast()
    };
    let rec = NeuralRecommender::new(Embsr::new(cfg.clone()), train_cfg);
    let frozen = FrozenModel::freeze(Embsr::new(cfg.clone()), max_len);
    let sessions = make_sessions(n_sessions, vocab, args.seed);

    // 1. the pre-serving path: per-session taped forwards
    let single_per_sec = throughput("per_session ", n_single, passes, || {
        for s in &sessions[..n_single] {
            std::hint::black_box(rec.scores(s));
        }
    });

    // 2./3. frozen tape-free path at batch sizes 1, 8, 32 (simd, the
    // serving default)
    let mut frozen_per_sec: Vec<(usize, f64)> = Vec::new();
    for &batch in &[1usize, 8, 32] {
        let per_sec = throughput(&format!("frozen_batch{batch:<2}"), n_sessions, passes, || {
            for chunk in sessions.chunks(batch) {
                std::hint::black_box(frozen.score_batch(chunk));
            }
        });
        frozen_per_sec.push((batch, per_sec));
    }

    // 3b. tier and precision sweep on the batched frozen path: the packed
    // (bitwise training) tier isolates the vectorized tier's multiplier,
    // and a bf16 snapshot shows reduced precision serves at full speed
    // from half the bytes (quantized weights are stored back as f32).
    let mut frozen_packed = FrozenModel::freeze(Embsr::new(cfg.clone()), max_len);
    frozen_packed.set_tier(KernelTier::Packed);
    let packed_batch32 = throughput("frozen_batch32[packed]", n_sessions, passes, || {
        for chunk in sessions.chunks(32) {
            std::hint::black_box(frozen_packed.score_batch(chunk));
        }
    });
    let frozen_bf16 =
        FrozenModel::freeze_with_precision(Embsr::new(cfg.clone()), max_len, Precision::Bf16);
    let bf16_batch32 = throughput("frozen_batch32[bf16]  ", n_sessions, passes, || {
        for chunk in sessions.chunks(32) {
            std::hint::black_box(frozen_bf16.score_batch(chunk));
        }
    });
    let snapshot_f32_bytes = frozen.snapshot_bytes().len();
    let snapshot_bf16_bytes = frozen_bf16.snapshot_bytes().len();
    println!(
        "  snapshot bytes: f32 {snapshot_f32_bytes} · bf16 {snapshot_bf16_bytes} \
         ({:.2}× smaller)",
        snapshot_f32_bytes as f64 / snapshot_bf16_bytes as f64
    );

    // 4. end-to-end through the micro-batching engine, packed tier first —
    // its histograms are reset afterwards so the reported latency reflects
    // the production (simd) configuration only.
    let engine_cfg = EngineConfig {
        workers,
        max_batch: 32,
        flush_deadline_us: 500,
        ..EngineConfig::default()
    };
    let engine_packed_per_sec = serve(
        &frozen_packed,
        || Embsr::new(cfg.clone()),
        engine_cfg,
        |client| {
            throughput("engine[packed]", n_sessions, passes, || {
                for chunk in sessions.chunks(32) {
                    std::hint::black_box(client.score(ScoreBatch {
                        sessions: chunk.to_vec(),
                    }));
                }
            })
        },
    );
    for metric in [
        METRIC_REQUEST_LATENCY_US,
        METRIC_BATCH_SESSIONS,
        METRIC_QUEUE_DEPTH,
    ] {
        embsr_obs::metrics::histogram(metric).reset();
    }
    let engine_per_sec = serve(
        &frozen,
        || Embsr::new(cfg.clone()),
        engine_cfg,
        |client| {
            throughput("engine[simd]  ", n_sessions, passes, || {
                for chunk in sessions.chunks(32) {
                    std::hint::black_box(client.score(ScoreBatch {
                        sessions: chunk.to_vec(),
                    }));
                }
            })
        },
    );

    let latency = embsr_obs::metrics::histogram(METRIC_REQUEST_LATENCY_US);
    let (p50_us, p95_us, p99_us) = (
        latency.quantile(0.5),
        latency.quantile(0.95),
        latency.quantile(0.99),
    );
    let batch_p50 = embsr_obs::metrics::histogram(METRIC_BATCH_SESSIONS).quantile(0.5);
    let queue_depth = embsr_obs::metrics::histogram(METRIC_QUEUE_DEPTH);
    let depth_max = queue_depth.max().unwrap_or(0);
    // Quantiles come back as log-bucket upper bounds, which can exceed the
    // exact maximum; clamp so the gauge is never self-contradictory.
    let depth_p95 = queue_depth.quantile(0.95).min(depth_max as f64);
    println!(
        "  engine request latency: p50 {p50_us:.0}us · p95 {p95_us:.0}us · p99 {p99_us:.0}us · \
         median batch occupancy {batch_p50:.0}"
    );
    println!("  engine queue depth: p95 {depth_p95:.0} · max {depth_max}");

    let mut ratios: Vec<(String, f64)> = Vec::new();
    for &(batch, per_sec) in &frozen_per_sec {
        if batch > 1 {
            ratios.push((format!("frozen_batch{batch}"), per_sec / single_per_sec));
        }
    }
    // Vectorized-tier multipliers: same path, same batching, only the
    // kernel tier differs — the serving counterpart of the kernel bench's
    // `simd_gemm_*` ratio family.
    ratios.push((
        "simd_frozen_batch32".to_string(),
        frozen_per_sec[2].1 / packed_batch32,
    ));
    ratios.push((
        "simd_engine".to_string(),
        engine_per_sec / engine_packed_per_sec,
    ));
    for (key, ratio) in &ratios {
        let against = if key.starts_with("simd_") {
            "over packed tier"
        } else {
            "over per_session"
        };
        println!("  speedup {key}: {ratio:.2}× {against}");
    }
    if let Some(reference) = reference_engine {
        println!(
            "  speedup engine_vs_reference: {:.2}× over pre-change engine ({reference:.1} sessions/s)",
            engine_per_sec / reference
        );
    }

    let rows: Vec<JsonValue> = [
        ("per_session".to_string(), "packed", "f32", 1, single_per_sec),
        (
            "frozen_batch1".to_string(),
            "simd",
            "f32",
            1,
            frozen_per_sec[0].1,
        ),
        (
            "frozen_batch8".to_string(),
            "simd",
            "f32",
            8,
            frozen_per_sec[1].1,
        ),
        (
            "frozen_batch32".to_string(),
            "simd",
            "f32",
            32,
            frozen_per_sec[2].1,
        ),
        (
            "frozen_batch32_packed".to_string(),
            "packed",
            "f32",
            32,
            packed_batch32,
        ),
        (
            "frozen_batch32_bf16".to_string(),
            "simd",
            "bf16",
            32,
            bf16_batch32,
        ),
        (
            "engine_packed".to_string(),
            "packed",
            "f32",
            32,
            engine_packed_per_sec,
        ),
        ("engine".to_string(), "simd", "f32", 32, engine_per_sec),
    ]
    .into_iter()
    .map(|(path, tier, precision, batch, per_sec)| {
        JsonValue::object(vec![
            ("experiment", JsonValue::String("serving_bench".into())),
            ("path", JsonValue::String(path)),
            ("tier", JsonValue::String(tier.into())),
            ("precision", JsonValue::String(precision.into())),
            ("batch", JsonValue::Number(batch as f64)),
            ("sessions_per_sec", JsonValue::Number(per_sec)),
            (
                "speedup_vs_per_session",
                JsonValue::Number(per_sec / single_per_sec),
            ),
        ])
    })
    .collect();

    if args.json {
        if let Err(e) = std::fs::create_dir_all(&args.out_dir) {
            embsr_obs::warn!(target: "exp::serving", "out dir: {e}");
        }
        let row_file = JsonValue::object(vec![
            ("experiment", JsonValue::String("serving_bench".into())),
            ("rows", JsonValue::Array(rows.clone())),
        ]);
        let path = args.out_dir.join("serving.json");
        if let Err(e) = std::fs::write(&path, row_file.to_json() + "\n") {
            embsr_obs::warn!(target: "exp::serving", "row write failed: {e}");
        }
        let table = JsonValue::object(vec![
            ("bench", JsonValue::String("serving".into())),
            ("quick", JsonValue::Bool(quick)),
            ("seed", JsonValue::Number(args.seed as f64)),
            ("vocab", JsonValue::Number(vocab as f64)),
            ("dim", JsonValue::Number(dim as f64)),
            ("engine_workers", JsonValue::Number(workers as f64)),
            (
                "simd_lanes",
                JsonValue::Number(embsr_tensor::kernels::simd_lanes() as f64),
            ),
            (
                "snapshot_f32_bytes",
                JsonValue::Number(snapshot_f32_bytes as f64),
            ),
            (
                "snapshot_bf16_bytes",
                JsonValue::Number(snapshot_bf16_bytes as f64),
            ),
            (
                "reference_engine_per_sec",
                reference_engine.map_or(JsonValue::Null, JsonValue::Number),
            ),
            (
                "engine_vs_reference",
                reference_engine.map_or(JsonValue::Null, |r| JsonValue::Number(engine_per_sec / r)),
            ),
            ("latency_p50_us", JsonValue::Number(p50_us)),
            ("latency_p95_us", JsonValue::Number(p95_us)),
            ("latency_p99_us", JsonValue::Number(p99_us)),
            ("queue_depth_p95", JsonValue::Number(depth_p95)),
            ("queue_depth_max", JsonValue::Number(depth_max as f64)),
            ("rows", JsonValue::Array(rows)),
        ]);
        let path = std::path::Path::new("BENCH_serving.json");
        match std::fs::write(path, table.to_json() + "\n") {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => embsr_obs::warn!(target: "exp::serving", "bench table: {e}"),
        }
    }

    if let Some(path) = write_baseline {
        let base = JsonValue::object(vec![
            ("bench", JsonValue::String("serving".into())),
            ("tolerance", JsonValue::Number(REGRESSION_TOLERANCE)),
            (
                "note",
                JsonValue::String(
                    "batched-vs-per-session throughput ratios; ratios are compared, \
                     not absolute sessions/s, so the check ports across machines"
                        .into(),
                ),
            ),
            (
                "speedup",
                JsonValue::Object(
                    ratios
                        .iter()
                        .map(|(k, v)| (k.clone(), JsonValue::Number(*v)))
                        .collect(),
                ),
            ),
        ]);
        match std::fs::write(&path, base.to_json() + "\n") {
            Ok(()) => println!("wrote baseline {}", path.display()),
            Err(e) => embsr_obs::warn!(target: "exp::serving", "baseline write: {e}"),
        }
    }

    if let Some(path) = check_baseline {
        match check_against_baseline(&path, &ratios) {
            Ok(summary) => println!("baseline check: {summary}"),
            Err(e) => {
                eprintln!("baseline check FAILED: {e}");
                std::process::exit(1);
            }
        }
    }

    println!(
        "Shape to verify: frozen_batch32 clears 3× over per_session (the \
         item-table normalization amortizes across the batch) and the engine \
         lands near frozen_batch32 with p50/p99 request latency recorded in \
         BENCH_serving.json."
    );
}

/// Compares measured throughput ratios against the checked-in baseline.
/// Returns a summary line, or an error naming every regressed path.
fn check_against_baseline(
    path: &std::path::Path,
    measured: &[(String, f64)],
) -> Result<String, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let base = embsr_obs::parse_json(&src)?;
    let tolerance = base
        .get("tolerance")
        .and_then(JsonValue::as_f64)
        .unwrap_or(REGRESSION_TOLERANCE);
    let JsonValue::Object(expected) = base
        .get("speedup")
        .ok_or("baseline has no `speedup` object")?
    else {
        return Err("baseline `speedup` is not an object".into());
    };
    let mut checked = 0usize;
    let mut failures = Vec::new();
    for (key, want) in expected {
        let Some(want) = want.as_f64() else {
            return Err(format!("baseline speedup `{key}` is not a number"));
        };
        let Some((_, got)) = measured.iter().find(|(k, _)| k == key) else {
            return Err(format!("baseline key `{key}` was not measured"));
        };
        let floor = want * (1.0 - tolerance);
        checked += 1;
        if *got < floor {
            failures.push(format!(
                "{key}: measured {got:.2}× < floor {floor:.2}× (baseline {want:.2}× − {:.0}%)",
                tolerance * 100.0
            ));
        }
    }
    if failures.is_empty() {
        Ok(format!(
            "{checked} throughput ratio(s) within {:.0}% of baseline",
            tolerance * 100.0
        ))
    } else {
        Err(failures.join("; "))
    }
}
