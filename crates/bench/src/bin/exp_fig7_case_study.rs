//! Experiment F7 — paper Fig. 7: case study.
//!
//! The paper shows a "Computers" session where the user clicks many
//! accessories but reads details/comments and adds-to-cart only on mouse
//! pads; item-only models recommend keyboards (the last item), while models
//! that see micro-behaviors recall the carted mouse pad.
//!
//! Here we train the same four variants on the JD-Computers-style corpus and
//! pick the test session with the strongest buyer signal (deep operation
//! sub-sequence + cart + repeat target); we print each model's top-5 recall
//! and the rank of the ground truth.

use embsr_bench::{build_recommender, parse_args, EmbsrVariant, ModelSpec};
use embsr_datasets::DatasetPreset;
use embsr_eval::{rank_of_target, top_k};
use embsr_sessions::Example;

/// Score for "how case-study-like" a test example is: prefers sessions whose
/// target repeats an in-session item that carries a deep op sub-sequence.
fn case_signal(ex: &Example) -> usize {
    let steps = ex.session.macro_steps();
    let target_visits: usize = steps
        .iter()
        .filter(|s| s.item == ex.target)
        .map(|s| s.ops.len())
        .sum();
    let depth: usize = steps.iter().map(|s| s.ops.len().saturating_sub(1)).sum();
    target_visits * 10 + depth + steps.len().min(12)
}

fn main() {
    let args = parse_args();
    let dataset = args.dataset(DatasetPreset::JdComputers);
    let case = dataset
        .test
        .iter()
        .max_by_key(|ex| case_signal(ex))
        .expect("non-empty test set")
        .clone();

    println!("Case session (id {}):", case.session.id);
    for step in case.session.macro_steps() {
        println!("  item {:>4}  ops {:?}", step.item, step.ops);
    }
    println!("  ground truth -> item {}\n", case.target);

    let specs = [
        ModelSpec::Embsr(EmbsrVariant::SgnnSelf),
        ModelSpec::Embsr(EmbsrVariant::SgnnSeqSelf),
        ModelSpec::Embsr(EmbsrVariant::SgnnDyadic),
        ModelSpec::Embsr(EmbsrVariant::Full),
    ];
    for spec in specs {
        let mut rec = build_recommender(spec, &dataset, &args);
        embsr_obs::info!(target: "exp::fig7", "training {}…", rec.name());
        rec.fit(&dataset.train, &dataset.val);
        let scores = rec.scores(&case.session);
        let top = top_k(&scores, 5);
        let rank = rank_of_target(&scores, case.target as usize);
        let hit = if top.contains(&(case.target as usize)) {
            "HIT"
        } else if rank <= 20 {
            "top-20"
        } else {
            "miss"
        };
        println!(
            "{:<14} top-5 = {:?}  target rank = {:>4}  [{}]",
            rec.name(),
            top,
            rank,
            hit
        );
    }
    println!("\nShape to verify (Fig. 7): micro-behavior variants rank the engaged item");
    println!("far higher than SGNN-Self, which keys on the last clicked item only.");
}
