//! Experiment K1 — kernel-layer micro-benchmarks.
//!
//! Sweeps square `d × d × d` GEMMs for `d ∈ {32, 64, 128}` across the three
//! micro-kernel variants (`A·B`, `Aᵀ·B`, `A·Bᵀ`) at every kernel tier —
//! scalar reference, packed register-tiled, and the vectorized lane-form
//! tier — plus embedding gather (forward) and gather→scatter (forward +
//! backward) throughput. Writes one row file `results/kernels.json` and the
//! aggregate `BENCH_kernels.json`.
//!
//! `--tier {scalar,packed,simd,all}` restricts the sweep (default `all`;
//! the baseline check needs the full sweep since it gates both ratio
//! families).
//!
//! The CI bench-regression job runs this with
//! `--check-baseline crates/bench/kernel_baseline.json`: the **speedup
//! ratios** (machine-portable, unlike raw GFLOP/s) — packed-vs-reference
//! (`gemm_ab_d128`) and vectorized-vs-packed (`simd_gemm_ab_d128`) — are
//! compared against the checked-in baseline, and the run exits non-zero
//! when any ratio regresses by more than the baseline's tolerance (15%).
//! `--write-baseline <path>` regenerates the baseline from the current run.
//!
//! `EMBSR_BENCH_QUICK=1` shrinks the per-measurement work budget ~10× for
//! smoke runs; the ratios stay meaningful because both sides of each ratio
//! shrink together.

use std::path::PathBuf;

use embsr_bench::parse_args;
use embsr_obs::JsonValue;
use embsr_tensor::kernels::{
    self, gemm_ab, gemm_abt, gemm_atb, reference_gemm_ab, reference_gemm_abt, reference_gemm_atb,
    KernelTier,
};
use embsr_tensor::{Rng, Tensor};
use std::hint::black_box;

/// All kernels share this square-problem calling shape.
type Kernel = fn(&[f32], &[f32], &mut [f32], usize, usize, usize);

/// Embedding-table rows for the gather/scatter benchmarks.
const GATHER_VOCAB: usize = 2048;

/// Indices gathered per call (a large batch of lookups).
const GATHER_ROWS: usize = 4096;

/// How much an individual speedup ratio may fall below the checked-in
/// baseline before the regression check fails.
const REGRESSION_TOLERANCE: f64 = 0.15;

fn sample(rng: &mut Rng, n: usize) -> Vec<f32> {
    (0..n).map(|_| rng.uniform_range(-1.0, 1.0)).collect()
}

/// Seconds per call for one GEMM kernel on a `d × d × d` problem, measured
/// over `iters` calls after a short warmup. The output is re-zeroed each
/// call (identical cost on both sides of every ratio) so accumulators stay
/// finite no matter how many samples the budget buys.
fn time_gemm(kernel: Kernel, a: &[f32], b: &[f32], out: &mut [f32], d: usize, iters: usize) -> f64 {
    for _ in 0..iters.div_ceil(10).max(2) {
        out.fill(0.0);
        kernel(a, b, out, d, d, d);
    }
    let span = embsr_obs::span("embsr_bench", "kernel_gemm");
    for _ in 0..iters {
        out.fill(0.0);
        kernel(black_box(a), black_box(b), out, d, d, d);
    }
    let secs = span.elapsed().as_secs_f64();
    black_box(&out[0]);
    secs / iters as f64
}

/// Seconds per call for a closure, measured over `iters` calls after a
/// warmup of roughly a tenth of that.
fn time_calls(mut f: impl FnMut(), iters: usize) -> f64 {
    for _ in 0..iters.div_ceil(10).max(2) {
        f();
    }
    let span = embsr_obs::span("embsr_bench", "kernel_gather");
    for _ in 0..iters {
        f();
    }
    span.elapsed().as_secs_f64() / iters as f64
}

fn main() {
    let args = parse_args();
    let argv: Vec<String> = std::env::args().collect();
    let flag_value = |flag: &str| {
        argv.iter()
            .position(|a| a == flag)
            .and_then(|i| argv.get(i + 1).cloned())
    };
    let check_baseline = flag_value("--check-baseline").map(PathBuf::from);
    let write_baseline = flag_value("--write-baseline").map(PathBuf::from);
    let tier_arg = flag_value("--tier").unwrap_or_else(|| "all".to_string());
    let tiers: Vec<KernelTier> = if tier_arg == "all" {
        vec![KernelTier::Scalar, KernelTier::Packed, KernelTier::Simd]
    } else {
        match KernelTier::parse(&tier_arg) {
            Some(t) => vec![t],
            None => {
                eprintln!("--tier must be one of scalar|packed|simd|all, got `{tier_arg}`");
                std::process::exit(2);
            }
        }
    };
    let quick = std::env::var("EMBSR_BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty());
    // Work budget per measurement: FLOPs for the GEMM timings, bytes moved
    // for the gather timings. Quick mode divides both by 10.
    let flop_budget = if quick { 2.0e7 } else { 2.0e8 };
    let byte_budget = if quick { 4.0e7 } else { 4.0e8 };

    println!(
        "kernel bench: d ∈ {{32, 64, 128}} · tiers {:?} · lanes={} · fma={} · quick={quick} · seed={}",
        tiers.iter().map(|t| t.name()).collect::<Vec<_>>(),
        kernels::simd_lanes(),
        kernels::has_hardware_fma(),
        args.seed
    );

    let mut rows: Vec<JsonValue> = Vec::new();
    let mut speedups: Vec<(String, f64)> = Vec::new();
    let variants: [(&str, Kernel, Kernel); 3] = [
        ("gemm_ab", gemm_ab, reference_gemm_ab),
        ("gemm_atb", gemm_atb, reference_gemm_atb),
        ("gemm_abt", gemm_abt, reference_gemm_abt),
    ];

    for &d in &[32usize, 64, 128] {
        let mut rng = Rng::seed_from_u64(args.seed ^ d as u64);
        let a = sample(&mut rng, d * d);
        let b = sample(&mut rng, d * d);
        let mut out = vec![0.0f32; d * d];
        let flops_per_call = 2.0 * (d * d * d) as f64;
        let iters = ((flop_budget / flops_per_call) as usize).clamp(5, 200_000);

        for (name, dispatched, reference) in variants {
            let reference_secs = time_gemm(reference, &a, &b, &mut out, d, iters);
            let reference_gflops = flops_per_call / reference_secs / 1e9;
            // seconds per call at each measured tier, in tier order
            let mut tier_secs: Vec<(KernelTier, f64)> = Vec::new();
            for &tier in &tiers {
                let secs = kernels::with_tier(tier, || {
                    time_gemm(dispatched, &a, &b, &mut out, d, iters)
                });
                tier_secs.push((tier, secs));
            }
            let secs_of = |t: KernelTier| tier_secs.iter().find(|(x, _)| *x == t).map(|(_, s)| *s);
            let mut line = format!("  {name} d={d}: reference {reference_gflops:.2} GFLOP/s");
            for &(tier, secs) in &tier_secs {
                let gflops = flops_per_call / secs / 1e9;
                let vs_ref = reference_secs / secs;
                line += &format!(" · {} {gflops:.2} GFLOP/s ({vs_ref:.2}× ref)", tier.name());
                rows.push(JsonValue::object(vec![
                    ("experiment", JsonValue::String("kernel_bench".into())),
                    ("kernel", JsonValue::String(name.into())),
                    ("tier", JsonValue::String(tier.name().into())),
                    ("dim", JsonValue::Number(d as f64)),
                    ("iters", JsonValue::Number(iters as f64)),
                    ("gflops", JsonValue::Number(gflops)),
                    ("reference_gflops", JsonValue::Number(reference_gflops)),
                    ("speedup_vs_reference", JsonValue::Number(vs_ref)),
                ]));
            }
            println!("{line}");
            // Ratio families for the portable regression gate: packed vs
            // scalar reference (the historical keys) and vectorized vs
            // packed (the new tier's multiplier).
            if let Some(packed_secs) = secs_of(KernelTier::Packed) {
                speedups.push((format!("{name}_d{d}"), reference_secs / packed_secs));
                if let Some(simd_secs) = secs_of(KernelTier::Simd) {
                    speedups.push((format!("simd_{name}_d{d}"), packed_secs / simd_secs));
                }
            }
        }

        // Embedding gather/scatter: the other kernel class the training
        // loop leans on (every batch starts and ends at the item table).
        let table = Tensor::from_vec(sample(&mut rng, GATHER_VOCAB * d), &[GATHER_VOCAB, d]);
        let idx: Vec<usize> = (0..GATHER_ROWS)
            .map(|i| (i.wrapping_mul(2654435761)) % GATHER_VOCAB)
            .collect();
        let bytes_per_call = (GATHER_ROWS * d * std::mem::size_of::<f32>()) as f64;
        let gather_iters = ((byte_budget / bytes_per_call) as usize).clamp(5, 200_000);

        let fwd_secs = time_calls(
            || {
                black_box(table.gather_rows(black_box(&idx)));
            },
            gather_iters,
        );
        let train_table = table.detach().requires_grad();
        let bwd_secs = time_calls(
            || {
                train_table.zero_grad();
                train_table.gather_rows(black_box(&idx)).sum().backward();
            },
            gather_iters,
        );
        let fwd_gbps = bytes_per_call / fwd_secs / 1e9;
        // Forward gather + backward scatter: 2× the bytes per call.
        let bwd_gbps = 2.0 * bytes_per_call / bwd_secs / 1e9;
        println!(
            "  gather d={d}: forward {fwd_gbps:.2} GB/s · gather+scatter {bwd_gbps:.2} GB/s \
             ({GATHER_ROWS} rows from {GATHER_VOCAB})"
        );
        for (kernel, gbps, secs) in [
            ("embedding_gather", fwd_gbps, fwd_secs),
            ("embedding_gather_scatter", bwd_gbps, bwd_secs),
        ] {
            rows.push(JsonValue::object(vec![
                ("experiment", JsonValue::String("kernel_bench".into())),
                ("kernel", JsonValue::String(kernel.into())),
                ("dim", JsonValue::Number(d as f64)),
                ("rows", JsonValue::Number(GATHER_ROWS as f64)),
                ("vocab", JsonValue::Number(GATHER_VOCAB as f64)),
                ("iters", JsonValue::Number(gather_iters as f64)),
                ("gb_per_sec", JsonValue::Number(gbps)),
                ("secs_per_call", JsonValue::Number(secs)),
            ]));
        }
    }

    if args.json {
        if let Err(e) = std::fs::create_dir_all(&args.out_dir) {
            embsr_obs::warn!(target: "exp::kernels", "out dir: {e}");
        }
        let row_file = JsonValue::object(vec![
            ("experiment", JsonValue::String("kernel_bench".into())),
            ("rows", JsonValue::Array(rows.clone())),
        ]);
        let path = args.out_dir.join("kernels.json");
        if let Err(e) = std::fs::write(&path, row_file.to_json() + "\n") {
            embsr_obs::warn!(target: "exp::kernels", "row write failed: {e}");
        }
        let table = JsonValue::object(vec![
            ("bench", JsonValue::String("kernels".into())),
            ("quick", JsonValue::Bool(quick)),
            ("seed", JsonValue::Number(args.seed as f64)),
            ("simd_lanes", JsonValue::Number(kernels::simd_lanes() as f64)),
            ("hardware_fma", JsonValue::Bool(kernels::has_hardware_fma())),
            ("rows", JsonValue::Array(rows)),
        ]);
        let path = std::path::Path::new("BENCH_kernels.json");
        match std::fs::write(path, table.to_json() + "\n") {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => embsr_obs::warn!(target: "exp::kernels", "bench table: {e}"),
        }
    }

    if let Some(path) = write_baseline {
        let base = JsonValue::object(vec![
            ("bench", JsonValue::String("kernels".into())),
            ("tolerance", JsonValue::Number(REGRESSION_TOLERANCE)),
            (
                "note",
                JsonValue::String(
                    "GEMM speedup ratios — `<kernel>_d<d>` packed vs scalar reference, \
                     `simd_<kernel>_d<d>` vectorized vs packed; ratios are compared, \
                     not absolute GFLOP/s, so the check ports across machines"
                        .into(),
                ),
            ),
            (
                "speedup",
                JsonValue::Object(
                    speedups
                        .iter()
                        .map(|(k, v)| (k.clone(), JsonValue::Number(*v)))
                        .collect(),
                ),
            ),
        ]);
        match std::fs::write(&path, base.to_json() + "\n") {
            Ok(()) => println!("wrote baseline {}", path.display()),
            Err(e) => embsr_obs::warn!(target: "exp::kernels", "baseline write: {e}"),
        }
    }

    if let Some(path) = check_baseline {
        match check_against_baseline(&path, &speedups) {
            Ok(summary) => println!("baseline check: {summary}"),
            Err(e) => {
                eprintln!("baseline check FAILED: {e}");
                std::process::exit(1);
            }
        }
    }

    println!(
        "Shape to verify: the vectorized tier clears 2× over packed at d=128 \
         (simd_gemm_ab_d128 in the baseline) and packed clears 2× over the \
         scalar reference (gemm_ab_d128); gather+scatter moves 2× the bytes \
         of gather alone at similar GB/s."
    );
}

/// Compares measured speedup ratios against the checked-in baseline.
/// Returns a summary line, or an error naming every regressed kernel.
fn check_against_baseline(
    path: &std::path::Path,
    measured: &[(String, f64)],
) -> Result<String, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let base = embsr_obs::parse_json(&src)?;
    let tolerance = base
        .get("tolerance")
        .and_then(JsonValue::as_f64)
        .unwrap_or(REGRESSION_TOLERANCE);
    let JsonValue::Object(expected) = base
        .get("speedup")
        .ok_or("baseline has no `speedup` object")?
    else {
        return Err("baseline `speedup` is not an object".into());
    };
    let mut checked = 0usize;
    let mut failures = Vec::new();
    for (key, want) in expected {
        let Some(want) = want.as_f64() else {
            return Err(format!("baseline speedup `{key}` is not a number"));
        };
        let Some((_, got)) = measured.iter().find(|(k, _)| k == key) else {
            return Err(format!("baseline key `{key}` was not measured"));
        };
        let floor = want * (1.0 - tolerance);
        checked += 1;
        if *got < floor {
            failures.push(format!(
                "{key}: measured {got:.2}× < floor {floor:.2}× (baseline {want:.2}× − {:.0}%)",
                tolerance * 100.0
            ));
        }
    }
    if failures.is_empty() {
        Ok(format!(
            "{checked} speedup ratio(s) within {:.0}% of baseline",
            tolerance * 100.0
        ))
    } else {
        Err(failures.join("; "))
    }
}
