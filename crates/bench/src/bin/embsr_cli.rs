//! `embsr_cli` — train, evaluate, and query EMBSR models from the command
//! line.
//!
//! ```bash
//! embsr_cli stats     --preset jd-appliances
//! embsr_cli train     --preset jd-appliances --dim 24 --epochs 6 --out /tmp/embsr.ckpt
//! embsr_cli evaluate  --preset jd-appliances --ckpt /tmp/embsr.ckpt
//! embsr_cli recommend --preset jd-appliances --ckpt /tmp/embsr.ckpt \
//!     --session "3:0,7:0,7:2,7:3" --k 5
//! ```
//!
//! The session syntax is `item:op` pairs separated by commas. Models are
//! reconstructed deterministically from the preset + flags, so a checkpoint
//! is portable across invocations with the same flags.

use embsr_core::{Embsr, EmbsrConfig};
use embsr_datasets::{build_dataset, Dataset, DatasetPreset, SyntheticConfig};
use embsr_eval::{evaluate, top_k};
use embsr_sessions::Session;
use embsr_train::{load_model, save_model, NeuralRecommender, Recommender, TrainConfig};
use std::path::PathBuf;
use std::process::exit;

struct Args(Vec<String>);

impl Args {
    fn get(&self, flag: &str) -> Option<String> {
        self.0
            .iter()
            .position(|a| a == flag)
            .and_then(|i| self.0.get(i + 1).cloned())
    }

    fn usize_or(&self, flag: &str, default: usize) -> usize {
        self.get(flag)
            .map(|s| s.parse().unwrap_or_else(|_| die(&format!("{flag} takes a number"))))
            .unwrap_or(default)
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("run `embsr_cli help` for usage");
    exit(2)
}

fn preset(args: &Args) -> DatasetPreset {
    match args.get("--preset").as_deref() {
        Some("jd-appliances") | None => DatasetPreset::JdAppliances,
        Some("jd-computers") => DatasetPreset::JdComputers,
        Some("trivago") => DatasetPreset::Trivago,
        Some(other) => die(&format!(
            "unknown preset {other}; use jd-appliances | jd-computers | trivago"
        )),
    }
}

fn dataset(args: &Args) -> Dataset {
    let factor = args
        .get("--factor")
        .map(|s| s.parse().unwrap_or_else(|_| die("--factor takes a number")))
        .unwrap_or(0.2f32);
    build_dataset(&SyntheticConfig::preset(preset(args)).scaled(factor))
}

fn model_config(args: &Args, data: &Dataset) -> EmbsrConfig {
    let dim = args.usize_or("--dim", 24);
    EmbsrConfig::full(data.num_items, data.num_ops, dim)
}

fn parse_session(spec: &str) -> Session {
    let pairs: Vec<(u32, u16)> = spec
        .split(',')
        .map(|pair| {
            let (item, op) = pair
                .split_once(':')
                .unwrap_or_else(|| die(&format!("bad session element '{pair}', want item:op")));
            (
                item.trim().parse().unwrap_or_else(|_| die("bad item id")),
                op.trim().parse().unwrap_or_else(|_| die("bad op id")),
            )
        })
        .collect();
    if pairs.is_empty() {
        die("empty --session");
    }
    Session::from_pairs(0, &pairs)
}

fn main() {
    embsr_obs::init_from_env("EMBSR_LOG", "info");
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let cmd = argv.first().cloned().unwrap_or_else(|| "help".into());
    let args = Args(argv);

    match cmd.as_str() {
        "stats" => {
            let data = dataset(&args);
            println!("{}", data.name);
            println!("{}", data.stats);
            println!(
                "splits: {} train / {} val / {} test examples, {} items",
                data.train.len(),
                data.val.len(),
                data.test.len(),
                data.num_items
            );
        }
        "train" => {
            let data = dataset(&args);
            let out: PathBuf = args
                .get("--out")
                .unwrap_or_else(|| die("train requires --out <path>"))
                .into();
            let cfg = TrainConfig {
                epochs: args.usize_or("--epochs", 6),
                lr: 8e-3,
                ..TrainConfig::default()
            };
            let mut rec = NeuralRecommender::new(Embsr::new(model_config(&args, &data)), cfg);
            embsr_obs::info!(
                target: "embsr_cli",
                "training EMBSR on {} ({} examples)…",
                data.name,
                data.train.len()
            );
            rec.fit(&data.train, &data.val);
            if let Some(report) = &rec.report {
                for e in &report.epochs {
                    embsr_obs::info!(
                        target: "embsr_cli",
                        "epoch {}: train {:.3}, val {:.3}",
                        e.epoch, e.train_loss, e.val_loss
                    );
                }
            }
            save_model(&rec.model, &out).unwrap_or_else(|e| die(&format!("save failed: {e}")));
            println!("saved checkpoint to {}", out.display());
        }
        "evaluate" => {
            let data = dataset(&args);
            let ckpt: PathBuf = args
                .get("--ckpt")
                .unwrap_or_else(|| die("evaluate requires --ckpt <path>"))
                .into();
            let rec = NeuralRecommender::new(
                Embsr::new(model_config(&args, &data)),
                TrainConfig::default(),
            );
            load_model(&rec.model, &ckpt).unwrap_or_else(|e| die(&format!("load failed: {e}")));
            let e = evaluate(&rec, &data.test, &[5, 10, 20]);
            println!(
                "H@5 {:.2}  H@10 {:.2}  H@20 {:.2}  M@5 {:.2}  M@10 {:.2}  M@20 {:.2}",
                e.hit_at(5),
                e.hit_at(10),
                e.hit_at(20),
                e.mrr_at(5),
                e.mrr_at(10),
                e.mrr_at(20)
            );
        }
        "recommend" => {
            let data = dataset(&args);
            let ckpt: PathBuf = args
                .get("--ckpt")
                .unwrap_or_else(|| die("recommend requires --ckpt <path>"))
                .into();
            let session =
                parse_session(&args.get("--session").unwrap_or_else(|| die("need --session")));
            let k = args.usize_or("--k", 5);
            let rec = NeuralRecommender::new(
                Embsr::new(model_config(&args, &data)),
                TrainConfig::default(),
            );
            load_model(&rec.model, &ckpt).unwrap_or_else(|e| die(&format!("load failed: {e}")));
            let scores = rec.scores(&session);
            for (rank, item) in top_k(&scores, k).into_iter().enumerate() {
                println!("{:>2}. item {:>6}  score {:.4}", rank + 1, item, scores[item]);
            }
        }
        _ => {
            println!("embsr_cli — EMBSR session-based recommendation");
            println!();
            println!("commands:");
            println!("  stats     --preset P [--factor F]");
            println!("  train     --preset P --out FILE [--dim N] [--epochs N] [--factor F]");
            println!("  evaluate  --preset P --ckpt FILE [--dim N] [--factor F]");
            println!("  recommend --preset P --ckpt FILE --session \"item:op,…\" [--k N]");
            println!();
            println!("presets: jd-appliances | jd-computers | trivago");
        }
    }
}
