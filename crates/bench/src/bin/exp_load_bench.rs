//! Experiment N1 — networked serving under open-loop load.
//!
//! Drives a sharded [`embsr_net::Server`] (EMBSR replicas behind the
//! length-prefixed TCP protocol) with an **open-loop** load generator:
//! request arrival times are scheduled up front from an offered rate, not
//! from response completions, so a slow server faces a growing backlog
//! exactly like production traffic — the failure mode closed-loop
//! generators structurally cannot produce. Session identities are sampled
//! Zipfian (log-uniform rank) from millions of distinct synthetic users,
//! so rendezvous sharding sees a realistic skewed key stream.
//!
//! Every phase drives a **fixed connection pool** and pipelines over it
//! with the protocol-v2 multiplexed client (the pre-v2 generator's
//! one-request-per-connection shape survives only as the depth-1 arm of
//! the multiplexing A/B). The phases:
//!
//! 1. `calibrate` — closed-loop burst that measures the deployment's
//!    capacity (sessions/s) for the phases below;
//! 1b. `multiplex A/B` — the same closed loop on two fixed connections at
//!    pipeline depth 1 vs 8: the throughput ratio is what request-id
//!    multiplexing buys over serial request/response;
//! 2. `steady` — open loop at ~0.5× capacity: everything should complete,
//!    with the client-observed latency histogram feeding the SLO gate;
//! 3. `overload` — open loop at ~2× capacity against a small admission
//!    cap: the server must refuse the excess with typed `Overloaded`
//!    responses (client- and server-side rejection counts are reconciled
//!    one-for-one; anything else is a silent drop);
//! 4. `repr-cache A/B` — a repeat-heavy Zipfian stream (tiny user
//!    universe) against two fresh deployments differing only in
//!    `EngineConfig::repr_cache`, both pre-warmed: the throughput ratio
//!    and hit rate are what the session-repr cache buys.
//!
//! Writes `results/load.json` plus the aggregate `BENCH_net.json`
//! (sessions/s/core, p50/p95/p99, rejection rate, connection/pipeline
//! shape, cache ratios). The CI net job runs
//! `--check-baseline crates/bench/net_baseline.json`: the **ratios**
//! (steady completion, overload answered, pipeline/cache speedups, cache
//! hit rate) are machine-portable, unlike raw sessions/s, and the run
//! exits non-zero past the baseline tolerance. `--enforce-slo` turns
//! missed `--slo` objectives fatal.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use embsr_bench::parse_args;
use embsr_core::{Embsr, EmbsrConfig};
use embsr_net::{NetClient, NetError, Server, ServerConfig};
use embsr_obs::{JsonValue, Stopwatch};
use embsr_serve::{EngineConfig, ScoreBatch, SubmitOptions};
use embsr_sessions::{MicroBehavior, Session};

/// How far a measured ratio may fall below the checked-in baseline before
/// the regression check fails.
const REGRESSION_TOLERANCE: f64 = 0.15;

/// Client-observed request latency per phase, µs.
const METRIC_STEADY_LATENCY: &str = "net.load.steady_latency_us";
const METRIC_OVERLOAD_LATENCY: &str = "net.load.overload_latency_us";

/// Micro-behavior operations in the synthetic vocabulary.
const NUM_OPS: usize = 8;

fn fail(msg: &str) -> ! {
    eprintln!("exp_load_bench FAILED: {msg}");
    std::process::exit(1);
}

/// SplitMix64 — the workspace's seeded test RNG, local to the generator.
struct Rand(u64);

impl Rand {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn unit(&mut self) -> f64 {
        // 53 mantissa bits → uniform in [0, 1).
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Samples a Zipf-skewed user rank in `[1, universe]` (log-uniform: rank
/// `~N^u`, the standard heavy-head approximation) and expands it into that
/// user's current session. The id is remixed so rendezvous sharding sees a
/// well-spread key even for head users.
fn zipf_session(rng: &mut Rand, universe: u64, vocab: usize) -> Session {
    let rank = (universe as f64).powf(rng.unit()) as u64;
    let user = rank.clamp(1, universe);
    let id = user
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .rotate_left(17)
        .wrapping_add(user);
    let len = 2 + (user % 6) as usize;
    Session {
        id,
        events: (0..len)
            .map(|j| {
                let item = ((user.wrapping_mul(131) + j as u64 * 17) % vocab as u64) as u32;
                let op = ((user + j as u64) % NUM_OPS as u64) as u16;
                MicroBehavior::new(item, op)
            })
            .collect(),
    }
}

/// Outcome counters for one load phase.
#[derive(Default)]
struct PhaseCounts {
    completed: AtomicU64,
    rejected: AtomicU64,
    failed: AtomicU64,
    /// High-water mark of pipelined requests in flight on any one
    /// connection, sampled at submit time.
    max_in_flight: AtomicU64,
}

/// Connects the fixed connection pool every load phase draws from. The
/// pre-v2 generator opened one connection per in-flight request; the
/// multiplexed protocol carries `lanes_per_conn` concurrent requests on
/// each of these instead.
fn connect_pool(server: &Server, conns: usize) -> Vec<NetClient> {
    (0..conns)
        .map(|_| {
            NetClient::connect(server.addr())
                .unwrap_or_else(|e| fail(&format!("pool connect: {e}")))
        })
        .collect()
}

/// Open-loop phase: `conns` pooled connections shared by
/// `conns * lanes_per_conn` generator lanes issue `total` single-session
/// requests whose arrival times are pre-scheduled at `offered_per_sec`.
/// A lane that falls behind schedule fires immediately (the backlog is
/// the point); it never waits for earlier responses to schedule later
/// arrivals. Lanes sharing a connection pipeline over it — each submits,
/// samples the connection's in-flight depth, then waits its own response.
/// Returns the phase's wall-clock seconds.
#[allow(clippy::too_many_arguments)]
fn open_loop_phase(
    server: &Server,
    conns: usize,
    lanes_per_conn: usize,
    total: usize,
    offered_per_sec: f64,
    universe: u64,
    vocab: usize,
    seed: u64,
    latency_metric: &'static str,
    counts: &PhaseCounts,
) -> f64 {
    let interval_us = 1.0e6 / offered_per_sec.max(1.0);
    let pool = connect_pool(server, conns);
    let lanes = conns * lanes_per_conn;
    let phase = Stopwatch::start();
    std::thread::scope(|scope| {
        for lane in 0..lanes {
            let counts = &counts;
            let phase = &phase;
            let client = &pool[lane % conns];
            scope.spawn(move || {
                let mut rng = Rand(seed ^ (lane as u64).wrapping_mul(0x243F_6A88));
                // Lane L owns arrivals L, L+lanes, L+2*lanes, ...
                let mut i = lane;
                while i < total {
                    let due_us = (i as f64 * interval_us) as u64;
                    let now_us = phase.elapsed_us();
                    if due_us > now_us {
                        std::thread::sleep(Duration::from_micros(due_us - now_us));
                    }
                    let session = zipf_session(&mut rng, universe, vocab);
                    let watch = Stopwatch::start();
                    let pending = client.submit_score(
                        &ScoreBatch {
                            sessions: vec![session],
                        },
                        SubmitOptions {
                            deadline_us: 2_000_000,
                            shed: true,
                        },
                    );
                    // ordering: Relaxed — statistics high-water mark only.
                    counts
                        .max_in_flight
                        .fetch_max(client.in_flight() as u64, Ordering::Relaxed);
                    match pending.wait() {
                        Ok(_) => {
                            embsr_obs::metrics::histogram(latency_metric)
                                .record(watch.elapsed_us());
                            // ordering: Relaxed — statistics counter only.
                            counts.completed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(NetError::Overloaded { .. }) => {
                            // ordering: Relaxed — statistics counter only.
                            counts.rejected.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            // ordering: Relaxed — statistics counter only.
                            counts.failed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    i += lanes;
                }
            });
        }
    });
    phase.elapsed_us() as f64 / 1.0e6
}

/// Closed-loop pooled driver: `conns` connections shared by
/// `conns * lanes_per_conn` lanes, each hammering its share of `total`
/// sessions (in requests of `batch` sessions) as fast as its own
/// responses return. `universe` controls the repeat rate of the Zipfian
/// key stream (small universe → repeat-heavy). Returns completed
/// sessions/s.
#[allow(clippy::too_many_arguments)]
fn closed_loop(
    server: &Server,
    conns: usize,
    lanes_per_conn: usize,
    total: usize,
    batch: usize,
    universe: u64,
    vocab: usize,
    seed: u64,
) -> f64 {
    let done = AtomicU64::new(0);
    let pool = connect_pool(server, conns);
    let lanes = conns * lanes_per_conn;
    let watch = Stopwatch::start();
    std::thread::scope(|scope| {
        for lane in 0..lanes {
            let done = &done;
            let client = &pool[lane % conns];
            scope.spawn(move || {
                let mut rng = Rand(seed ^ 0xCA11_B007 ^ lane as u64);
                for _ in 0..total / lanes / batch {
                    let sessions: Vec<Session> = (0..batch)
                        .map(|_| zipf_session(&mut rng, universe, vocab))
                        .collect();
                    if client
                        .score(&ScoreBatch { sessions }, SubmitOptions::default())
                        .is_ok()
                    {
                        // ordering: Relaxed — statistics counter only.
                        done.fetch_add(batch as u64, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    let secs = watch.elapsed_us() as f64 / 1.0e6;
    // ordering: Relaxed — read after the scope joined every writer.
    done.load(Ordering::Relaxed) as f64 / secs.max(1e-9)
}

fn quantiles(metric: &str) -> (f64, f64, f64) {
    let h = embsr_obs::metrics::histogram(metric);
    (h.quantile(0.5), h.quantile(0.95), h.quantile(0.99))
}

fn main() {
    let args = parse_args();
    let argv: Vec<String> = std::env::args().collect();
    let flag_value = |flag: &str| {
        argv.iter()
            .position(|a| a == flag)
            .and_then(|i| argv.get(i + 1).cloned())
            .map(PathBuf::from)
    };
    let check_baseline = flag_value("--check-baseline");
    let write_baseline = flag_value("--write-baseline");
    let enforce_slo = argv.iter().any(|a| a == "--enforce-slo");
    let quick = std::env::var("EMBSR_BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty());

    // Millions of distinct users either way: the Zipf tail must dwarf any
    // session cache and exercise the full rendezvous key space.
    let (vocab, dim, universe, calibrate_n, steady_n, overload_n) = if quick {
        (512, 16, 2_000_000u64, 160, 200, 240)
    } else {
        (2048, 32, 8_000_000u64, 800, 1200, 1600)
    };
    let workers = args.threads.clamp(1, 4);
    let replicas = 2usize;
    let cores = (replicas * workers) as f64;
    let cfg = ServerConfig {
        replicas,
        dispatchers: 2,
        engine: EngineConfig {
            workers,
            max_batch: 32,
            flush_deadline_us: 300,
            ..EngineConfig::default()
        },
        // Small on purpose: the overload phase must hit the cap with a
        // bounded client fleet.
        admission_cap: 4,
        ..ServerConfig::default()
    };

    println!(
        "load bench: EMBSR |V|={vocab} d={dim} · {replicas} replicas × {workers} workers · \
         {universe} users · quick={quick} · seed={}",
        args.seed
    );
    embsr_obs::metrics::set_enabled(true);

    let mut model_cfg = EmbsrConfig::full(vocab, NUM_OPS, dim);
    model_cfg.seed = args.seed;
    let frozen = embsr_serve::FrozenModel::freeze(Embsr::new(model_cfg.clone()), 40);
    let model_cfg2 = model_cfg.clone(); // the cache A/B redeploys the same model
    let factory_cfg = model_cfg;
    let server = match Server::start(&frozen, move || Embsr::new(factory_cfg.clone()), cfg) {
        Ok(s) => s,
        Err(e) => fail(&format!("server start: {e}")),
    };

    // --- phase 1: capacity calibration (closed loop, pooled) -------------
    let capacity = closed_loop(&server, 8, 2, calibrate_n, 1, universe, vocab, args.seed);
    println!(
        "  calibrate: {capacity:.0} sessions/s capacity ({:.0}/s/core)",
        capacity / cores
    );

    // --- phase 1b: multiplexing A/B on the same deployment ---------------
    // Two fixed connections either way; only the per-connection pipeline
    // depth changes. The v1 generator's one-request-per-connection shape
    // is the depth-1 arm, so the ratio is exactly what protocol v2 buys.
    let pipeline_n = calibrate_n;
    let thr_serial = closed_loop(&server, 2, 1, pipeline_n, 1, universe, vocab, args.seed + 7);
    let thr_deep = closed_loop(&server, 2, 8, pipeline_n, 1, universe, vocab, args.seed + 7);
    let pipeline_speedup = thr_deep / thr_serial.max(1e-9);
    println!(
        "  multiplex: depth 1 {thr_serial:.0}/s → depth 8 {thr_deep:.0}/s on 2 connections \
         ({pipeline_speedup:.2}×)"
    );

    // --- phase 2: steady state at ~0.5× capacity (open loop) ------------
    let steady = PhaseCounts::default();
    let steady_rate = (capacity * 0.5).max(10.0);
    let steady_conns = 8usize;
    let steady_depth = 4usize;
    let steady_secs = open_loop_phase(
        &server,
        steady_conns,
        steady_depth,
        steady_n,
        steady_rate,
        universe,
        vocab,
        args.seed + 1,
        METRIC_STEADY_LATENCY,
        &steady,
    );
    // ordering: Relaxed (all reads below) — the scopes joined every writer.
    let steady_done = steady.completed.load(Ordering::Relaxed);
    let steady_rej = steady.rejected.load(Ordering::Relaxed);
    let steady_fail = steady.failed.load(Ordering::Relaxed);
    let (s_p50, s_p95, s_p99) = quantiles(METRIC_STEADY_LATENCY);
    let steady_goodput = steady_done as f64 / steady_secs.max(1e-9);
    println!(
        "  steady: offered {steady_rate:.0}/s → {steady_goodput:.0}/s good \
         ({:.1}/s/core) · p50 {s_p50:.0}us p95 {s_p95:.0}us p99 {s_p99:.0}us · \
         {steady_rej} rejected, {steady_fail} failed",
        steady_goodput / cores
    );

    // --- phase 3: overload at ~2× capacity (open loop) -------------------
    let overload = PhaseCounts::default();
    let overload_rate = (capacity * 2.0).max(40.0);
    let overload_secs = open_loop_phase(
        &server,
        16,
        4,
        overload_n,
        overload_rate,
        universe,
        vocab,
        args.seed + 2,
        METRIC_OVERLOAD_LATENCY,
        &overload,
    );
    // ordering: Relaxed (all reads below) — the scopes joined every writer.
    let over_done = overload.completed.load(Ordering::Relaxed);
    let over_rej = overload.rejected.load(Ordering::Relaxed);
    let over_fail = overload.failed.load(Ordering::Relaxed);
    let (o_p50, o_p95, o_p99) = quantiles(METRIC_OVERLOAD_LATENCY);
    let over_goodput = over_done as f64 / overload_secs.max(1e-9);
    let rejection_rate = over_rej as f64 / overload_n as f64;
    println!(
        "  overload: offered {overload_rate:.0}/s → {over_goodput:.0}/s good · \
         rejection rate {:.1}% · p50 {o_p50:.0}us p95 {o_p95:.0}us p99 {o_p99:.0}us · \
         {over_fail} failed",
        rejection_rate * 100.0
    );

    // Client-observed rejections must reconcile with the server's own
    // accounting: a mismatch means a request was dropped without an answer.
    let stats = server.stats();
    let client_rejected = steady_rej + over_rej;
    if stats.rejected != client_rejected {
        fail(&format!(
            "rejection accounting mismatch: server counted {} but clients observed {client_rejected}",
            stats.rejected
        ));
    }
    println!(
        "  accounting: {} completed / {} rejected server-side — reconciled with clients",
        stats.completed, stats.rejected
    );
    // ordering: Relaxed — high-water reads after the phases joined.
    let max_in_flight = steady
        .max_in_flight
        .load(Ordering::Relaxed)
        .max(overload.max_in_flight.load(Ordering::Relaxed));
    println!(
        "  multiplex: {steady_conns} pooled connections × depth {steady_depth}, \
         deepest pipeline observed {max_in_flight}"
    );
    server.shutdown();

    // --- phase 4: session-repr cache A/B ---------------------------------
    // A repeat-heavy Zipfian stream (tiny user universe, so the head users
    // recur constantly) against two fresh deployments differing only in
    // `EngineConfig::repr_cache`. Both arms get an untimed warm pass, so
    // the ratio isolates the cache, not first-touch effects.
    let cache_universe = 48u64;
    let cache_n = if quick { 768 } else { 3200 };
    let cache_server = |repr_cache: usize| {
        let frozen = embsr_serve::FrozenModel::freeze(Embsr::new(model_cfg2.clone()), 40);
        let factory = model_cfg2.clone();
        Server::start(
            &frozen,
            move || Embsr::new(factory.clone()),
            ServerConfig {
                replicas,
                dispatchers: 2,
                engine: EngineConfig {
                    workers,
                    max_batch: 32,
                    flush_deadline_us: 300,
                    repr_cache,
                    ..EngineConfig::default()
                },
                ..ServerConfig::default()
            },
        )
        .unwrap_or_else(|e| fail(&format!("cache A/B server start: {e}")))
    };
    let off = cache_server(0);
    let _ = closed_loop(&off, 4, 4, cache_n, 8, cache_universe, vocab, args.seed + 3);
    let thr_cache_off = closed_loop(&off, 4, 4, cache_n, 8, cache_universe, vocab, args.seed + 3);
    off.shutdown();
    let on = cache_server(8192);
    let _ = closed_loop(&on, 4, 4, cache_n, 8, cache_universe, vocab, args.seed + 3);
    let probe = NetClient::connect(on.addr())
        .unwrap_or_else(|e| fail(&format!("cache status probe: {e}")));
    let warm_status = probe.status().unwrap_or_else(|e| fail(&format!("status: {e}")));
    let thr_cache_on = closed_loop(&on, 4, 4, cache_n, 8, cache_universe, vocab, args.seed + 3);
    let hot_status = probe.status().unwrap_or_else(|e| fail(&format!("status: {e}")));
    drop(probe);
    on.shutdown();
    let sum = |s: &embsr_net::ServerStatus, f: fn(&embsr_serve::CacheStats) -> u64| -> u64 {
        s.replicas.iter().map(|r| f(&r.cache)).sum()
    };
    let d_hits = sum(&hot_status, |c| c.hits) - sum(&warm_status, |c| c.hits);
    let d_misses = sum(&hot_status, |c| c.misses) - sum(&warm_status, |c| c.misses);
    let cache_hit_rate = d_hits as f64 / (d_hits + d_misses).max(1) as f64;
    let cache_speedup = thr_cache_on / thr_cache_off.max(1e-9);
    println!(
        "  repr cache: off {thr_cache_off:.0}/s → on {thr_cache_on:.0}/s \
         ({cache_speedup:.2}×) · hit rate {:.1}% over the timed pass",
        cache_hit_rate * 100.0
    );

    // --- SLOs -------------------------------------------------------------
    let mut slo_specs = Vec::new();
    let mut iter = argv.iter();
    while let Some(a) = iter.next() {
        if a == "--slo" {
            let Some(raw) = iter.next() else {
                fail("--slo takes a spec, e.g. net.load.steady_latency_us:p95<=500000");
            };
            match embsr_obs::slo::SloSpec::parse(raw) {
                Ok(s) => slo_specs.push(s),
                Err(e) => fail(&format!("--slo `{raw}`: {e}")),
            }
        }
    }
    let slo_reports = embsr_obs::slo::evaluate(&slo_specs);
    for r in &slo_reports {
        let state = if r.met { "met" } else { "MISSED" };
        println!(
            "  slo {}: {state} (measured {:.0}us over {} samples)",
            r.spec.display(),
            r.measured_us,
            r.samples
        );
    }
    let slo_all_met = slo_reports.iter().all(|r| r.met);

    // --- portable ratios for the regression gate -------------------------
    let steady_completion = steady_done as f64 / steady_n as f64;
    let overload_answered = (over_done + over_rej) as f64 / overload_n as f64;
    let ratios: Vec<(String, f64)> = vec![
        ("steady_completion".into(), steady_completion),
        ("overload_answered".into(), overload_answered),
        ("pipeline_speedup".into(), pipeline_speedup),
        ("cache_speedup".into(), cache_speedup),
        ("cache_hit_rate".into(), cache_hit_rate),
    ];
    println!(
        "  ratios: steady_completion {steady_completion:.3} · overload_answered {overload_answered:.3} · \
         pipeline_speedup {pipeline_speedup:.2} · cache_speedup {cache_speedup:.2} · \
         cache_hit_rate {cache_hit_rate:.3}"
    );

    let phase_rows: Vec<JsonValue> = [
        (
            "steady",
            steady_rate,
            steady_goodput,
            steady_done,
            steady_rej,
            steady_fail,
            (s_p50, s_p95, s_p99),
        ),
        (
            "overload",
            overload_rate,
            over_goodput,
            over_done,
            over_rej,
            over_fail,
            (o_p50, o_p95, o_p99),
        ),
    ]
    .into_iter()
    .map(
        |(phase, offered, goodput, done, rej, failed, (p50, p95, p99))| {
            JsonValue::object(vec![
                ("experiment", JsonValue::String("load_bench".into())),
                ("phase", JsonValue::String(phase.into())),
                ("offered_per_sec", JsonValue::Number(offered)),
                ("goodput_per_sec", JsonValue::Number(goodput)),
                ("goodput_per_sec_per_core", JsonValue::Number(goodput / cores)),
                ("completed", JsonValue::Number(done as f64)),
                ("rejected", JsonValue::Number(rej as f64)),
                ("failed", JsonValue::Number(failed as f64)),
                ("latency_p50_us", JsonValue::Number(p50)),
                ("latency_p95_us", JsonValue::Number(p95)),
                ("latency_p99_us", JsonValue::Number(p99)),
            ])
        },
    )
    .collect();

    if args.json {
        if let Err(e) = std::fs::create_dir_all(&args.out_dir) {
            embsr_obs::warn!(target: "exp::load", "out dir: {e}");
        }
        let row_file = JsonValue::object(vec![
            ("experiment", JsonValue::String("load_bench".into())),
            ("rows", JsonValue::Array(phase_rows.clone())),
        ]);
        let path = args.out_dir.join("load.json");
        if let Err(e) = std::fs::write(&path, row_file.to_json() + "\n") {
            embsr_obs::warn!(target: "exp::load", "row write failed: {e}");
        }
        let table = JsonValue::object(vec![
            ("bench", JsonValue::String("net".into())),
            ("quick", JsonValue::Bool(quick)),
            ("seed", JsonValue::Number(args.seed as f64)),
            ("vocab", JsonValue::Number(vocab as f64)),
            ("dim", JsonValue::Number(dim as f64)),
            ("replicas", JsonValue::Number(replicas as f64)),
            ("engine_workers", JsonValue::Number(workers as f64)),
            ("user_universe", JsonValue::Number(universe as f64)),
            ("capacity_sessions_per_sec", JsonValue::Number(capacity)),
            (
                "capacity_sessions_per_sec_per_core",
                JsonValue::Number(capacity / cores),
            ),
            (
                "steady_goodput_per_sec_per_core",
                JsonValue::Number(steady_goodput / cores),
            ),
            ("connections", JsonValue::Number(steady_conns as f64)),
            ("pipeline_depth", JsonValue::Number(steady_depth as f64)),
            ("max_in_flight", JsonValue::Number(max_in_flight as f64)),
            ("latency_p50_us", JsonValue::Number(s_p50)),
            ("latency_p95_us", JsonValue::Number(s_p95)),
            ("latency_p99_us", JsonValue::Number(s_p99)),
            ("rejection_rate", JsonValue::Number(rejection_rate)),
            (
                "ratios",
                JsonValue::Object(
                    ratios
                        .iter()
                        .map(|(k, v)| (k.clone(), JsonValue::Number(*v)))
                        .collect(),
                ),
            ),
            (
                "slos",
                JsonValue::Array(slo_reports.iter().map(|r| r.to_json_value()).collect()),
            ),
            ("slo_all_met", JsonValue::Bool(slo_all_met)),
            ("rows", JsonValue::Array(phase_rows)),
        ]);
        let path = std::path::Path::new("BENCH_net.json");
        match std::fs::write(path, table.to_json() + "\n") {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => embsr_obs::warn!(target: "exp::load", "bench table: {e}"),
        }
    }

    if let Some(path) = write_baseline {
        let base = JsonValue::object(vec![
            ("bench", JsonValue::String("net".into())),
            ("tolerance", JsonValue::Number(REGRESSION_TOLERANCE)),
            (
                "note",
                JsonValue::String(
                    "completion/answered ratios, not absolute sessions/s, so the \
                     check ports across machines"
                        .into(),
                ),
            ),
            (
                "ratios",
                JsonValue::Object(
                    ratios
                        .iter()
                        .map(|(k, v)| (k.clone(), JsonValue::Number(*v)))
                        .collect(),
                ),
            ),
        ]);
        match std::fs::write(&path, base.to_json() + "\n") {
            Ok(()) => println!("wrote baseline {}", path.display()),
            Err(e) => embsr_obs::warn!(target: "exp::load", "baseline write: {e}"),
        }
    }

    if let Some(path) = check_baseline {
        match check_against_baseline(&path, &ratios) {
            Ok(summary) => println!("baseline check: {summary}"),
            Err(e) => {
                eprintln!("baseline check FAILED: {e}");
                std::process::exit(1);
            }
        }
    }

    if enforce_slo && !slo_all_met {
        fail("one or more SLO objectives were missed (--enforce-slo)");
    }

    println!(
        "Shape to verify: the steady phase completes ~everything it was \
         offered at half capacity over a fixed pipelined connection pool, \
         the overload phase converts the excess into typed Overloaded \
         rejections that reconcile exactly with the server's counters, \
         deeper pipelines and a warm repr cache both beat their baselines, \
         and BENCH_net.json carries sessions/s/core with p50/p95/p99, the \
         rejection rate, the connection/pipeline shape, and the cache \
         ratios."
    );
}

/// Compares measured ratios against the checked-in baseline. Returns a
/// summary line, or an error naming every regressed ratio.
fn check_against_baseline(
    path: &std::path::Path,
    measured: &[(String, f64)],
) -> Result<String, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let base = embsr_obs::parse_json(&src)?;
    let tolerance = base
        .get("tolerance")
        .and_then(JsonValue::as_f64)
        .unwrap_or(REGRESSION_TOLERANCE);
    let JsonValue::Object(expected) = base
        .get("ratios")
        .ok_or("baseline has no `ratios` object")?
    else {
        return Err("baseline `ratios` is not an object".into());
    };
    let mut checked = 0usize;
    let mut failures = Vec::new();
    for (key, want) in expected {
        let Some(want) = want.as_f64() else {
            return Err(format!("baseline ratio `{key}` is not a number"));
        };
        let Some((_, got)) = measured.iter().find(|(k, _)| k == key) else {
            return Err(format!("baseline key `{key}` was not measured"));
        };
        let floor = want * (1.0 - tolerance);
        checked += 1;
        if *got < floor {
            failures.push(format!(
                "{key}: measured {got:.3} < floor {floor:.3} (baseline {want:.3} − {:.0}%)",
                tolerance * 100.0
            ));
        }
    }
    if failures.is_empty() {
        Ok(format!(
            "{checked} ratio(s) within {:.0}% of baseline",
            tolerance * 100.0
        ))
    } else {
        Err(failures.join("; "))
    }
}
