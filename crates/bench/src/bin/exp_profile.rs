//! Experiment P1 — end-to-end request tracing, kernel profiling and SLO
//! evaluation.
//!
//! Exercises the full observability stack in one run:
//!
//! 1. **Tracing** — request tracing is switched on and every engine request
//!    (`ScoreBatch` and `TopK`) emits a span tree through a `JsonlSink` at
//!    `results/trace.jsonl`. After the engine drains, every line of the
//!    file is validated against the documented schema
//!    ([`trace::validate_line`]) and reassembled into trees
//!    ([`trace::build_trees`]); the run fails on any schema or structural
//!    violation. For the single-session requests the reconstructed phase
//!    durations (queue wait, batch assembly, scoring, top-k selection) must
//!    sum to within 5% of the root span's end-to-end latency.
//! 2. **Profiling** — [`embsr_obs::profile`] aggregates shape-bucketed GEMM
//!    and gather timings from the scoring workers and a short training fit;
//!    the busiest-first report lands in the profile JSON together with the
//!    buffer-pool counters from the metrics registry.
//! 3. **SLOs** — latency objectives are evaluated against the live
//!    histograms with error-budget accounting ([`embsr_obs::slo`]).
//!    `--slo metric:pQQ<=MICROS[@BUDGET]` adds objectives (repeatable);
//!    `--enforce-slo` exits non-zero when any objective is missed.
//!
//! Writes `results/profile.json` (full report) plus the aggregate
//! `BENCH_obs.json`. `EMBSR_BENCH_QUICK=1` shrinks the model and the
//! request volume for CI smoke runs.

use std::path::Path;
use std::sync::Arc;

use embsr_bench::parse_args;
use embsr_core::{Embsr, EmbsrConfig};
use embsr_obs::trace::{self, TraceTree};
use embsr_obs::{EnvFilter, JsonValue, JsonlSink};
use embsr_serve::{serve, EngineConfig, FrozenModel, ScoreBatch, TopK};
use embsr_sessions::{Example, MicroBehavior, Session};
use embsr_train::{NeuralRecommender, Recommender, TrainConfig};

/// Reconstructed phase durations must sum to within this fraction of the
/// root span's end-to-end latency (for the best single-session request).
const PHASE_SUM_TOLERANCE: f64 = 0.05;

/// Latency objectives evaluated on every run; deliberately generous so the
/// default run documents headroom instead of flaking on slow CI machines.
/// `--slo` appends stricter ones and `--enforce-slo` turns misses fatal.
const DEFAULT_SLOS: &[&str] = &[
    "serve.request_latency_us:p99<=500000",
    "serve.request_latency_us:p50<=250000",
];

/// Micro-behavior operations in the synthetic vocabulary.
const NUM_OPS: usize = 8;

/// The phases a traced engine request decomposes into.
const REQUEST_PHASES: &[&str] = &["queue_wait", "batch_assembly", "scoring", "top_k"];

/// Synthetic session prefixes with mixed lengths (2–9 micro-behaviors).
fn make_sessions(n: usize, vocab: usize, seed: u64) -> Vec<Session> {
    (0..n as u64)
        .map(|i| {
            let len = 2 + ((i * 11 + seed) % 8) as usize;
            Session {
                id: i,
                events: (0..len)
                    .map(|j| {
                        let item = ((i * 131 + j as u64 * 17 + seed) % vocab as u64) as u32;
                        let op = ((i * 3 + j as u64) % NUM_OPS as u64) as u16;
                        MicroBehavior::new(item, op)
                    })
                    .collect(),
            }
        })
        .collect()
}

/// Next-item prediction examples derived from the synthetic sessions.
fn make_examples(sessions: &[Session], vocab: usize) -> Vec<Example> {
    sessions
        .iter()
        .map(|s| Example {
            session: s.clone(),
            target: (s.id % vocab as u64) as u32,
        })
        .collect()
}

/// Relative gap between the summed phase durations and the root latency of
/// one request tree: `(root − Σ phases) / root`. Phases never overlap and
/// never escape the root, so the gap is the untraced overhead (channel
/// hand-offs, response assembly).
fn phase_sum_error(tree: &TraceTree) -> f64 {
    let total = tree.duration_us().max(1) as f64;
    let phases: u64 = REQUEST_PHASES.iter().map(|p| tree.total_us(p)).sum();
    (total - phases as f64).abs() / total
}

fn fail(msg: &str) -> ! {
    eprintln!("exp_profile FAILED: {msg}");
    std::process::exit(1);
}

fn main() {
    let args = parse_args();
    let argv: Vec<String> = std::env::args().collect();
    let enforce_slo = argv.iter().any(|a| a == "--enforce-slo");
    let quick = std::env::var("EMBSR_BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty());

    // A vocabulary large enough that scoring dominates the request timeline:
    // the 5% phase-sum acceptance bound needs the untraced slack (channel
    // hand-offs) to be small relative to the traced phases.
    let (vocab, dim, n_sessions, attempts) = if quick {
        (2048, 32, 24, 12)
    } else {
        (8192, 48, 96, 16)
    };
    let max_len = 40;
    let workers = args.threads.clamp(1, 4);

    println!(
        "profile bench: EMBSR |V|={vocab} d={dim} · {n_sessions} sessions · \
         engine workers={workers} · quick={quick} · seed={}",
        args.seed
    );

    embsr_obs::metrics::set_enabled(true);
    embsr_obs::profile::set_enabled(true);
    embsr_obs::profile::reset();
    if let Err(e) = std::fs::create_dir_all(&args.out_dir) {
        fail(&format!("cannot create {}: {e}", args.out_dir.display()));
    }

    // Fresh trace file per run; the sink appends, so stale records from a
    // previous run would otherwise survive into this run's validation.
    let trace_path = args.out_dir.join("trace.jsonl");
    let _ = std::fs::remove_file(&trace_path);
    let filter: EnvFilter = match "off,trace=trace".parse() {
        Ok(f) => f,
        Err(e) => fail(&format!("trace filter: {e}")),
    };
    match JsonlSink::file(&trace_path, filter) {
        Ok(sink) => embsr_obs::add_sink(Arc::new(sink)),
        Err(e) => fail(&format!("cannot open {}: {e}", trace_path.display())),
    }
    trace::set_enabled(true);

    let mut cfg = EmbsrConfig::full(vocab, NUM_OPS, dim);
    cfg.seed = args.seed;
    let frozen = FrozenModel::freeze(Embsr::new(cfg.clone()), max_len);
    let sessions = make_sessions(n_sessions, vocab, args.seed);

    // --- 1. traced engine requests -------------------------------------
    let engine_cfg = EngineConfig {
        workers,
        max_batch: 32,
        flush_deadline_us: 500,
        ..EngineConfig::default()
    };
    let span = embsr_obs::span("embsr_bench", "profile_requests");
    serve(
        &frozen,
        || Embsr::new(cfg.clone()),
        engine_cfg,
        |client| {
            // Batched requests: span trees under engine load.
            for chunk in sessions.chunks(8) {
                std::hint::black_box(client.score(ScoreBatch {
                    sessions: chunk.to_vec(),
                }));
                std::hint::black_box(client.top_k(TopK {
                    sessions: chunk.to_vec(),
                    k: 10,
                }));
            }
            // Single-session requests: the acceptance-bound candidates. One
            // request in flight at a time, so queue wait and assembly are
            // minimal and the tree is dominated by traced scoring time.
            for i in 0..attempts {
                std::hint::black_box(client.top_k(TopK {
                    sessions: vec![sessions[i % sessions.len()].clone()],
                    k: 10,
                }));
            }
        },
    );
    let request_secs = span.elapsed().as_secs_f64();
    drop(span);
    trace::set_enabled(false);
    println!("  traced {} requests in {request_secs:.2}s", sessions.len().div_ceil(8) * 2 + attempts);

    // --- 2. short training fit: phase attribution + training kernels ----
    let train_cfg = TrainConfig {
        epochs: 2,
        batch_size: 16,
        max_session_len: max_len,
        seed: args.seed,
        patience: None,
        ..TrainConfig::fast()
    };
    let (train_vocab, train_dim) = if quick { (256, 16) } else { (512, 24) };
    let mut tiny = EmbsrConfig::full(train_vocab, NUM_OPS, train_dim);
    tiny.seed = args.seed;
    let train_sessions = make_sessions(if quick { 48 } else { 128 }, train_vocab, args.seed + 1);
    let examples = make_examples(&train_sessions, train_vocab);
    let mut rec = NeuralRecommender::new(Embsr::new(tiny), train_cfg);
    let span = embsr_obs::span("embsr_bench", "profile_fit");
    rec.fit(&examples, &examples);
    let fit_secs = span.elapsed().as_secs_f64();
    drop(span);
    println!("  trained {} examples for 2 epochs in {fit_secs:.2}s", examples.len());

    // --- 3. offline validation of the emitted trace --------------------
    let text = match std::fs::read_to_string(&trace_path) {
        Ok(t) => t,
        Err(e) => fail(&format!("cannot read {}: {e}", trace_path.display())),
    };
    let mut records = Vec::new();
    for (i, line) in text.lines().enumerate() {
        match trace::validate_line(line) {
            Ok(Some(r)) => records.push(r),
            Ok(None) => {}
            Err(e) => fail(&format!("{}:{}: {e}", trace_path.display(), i + 1)),
        }
    }
    if records.is_empty() {
        fail("no trace records were emitted");
    }
    let trees = match trace::build_trees(&records) {
        Ok(t) => t,
        Err(e) => fail(&format!("trace reconstruction: {e}")),
    };
    let request_trees: Vec<&TraceTree> = trees
        .iter()
        .filter(|t| t.root().name.ends_with("_request"))
        .collect();
    if request_trees.is_empty() {
        fail("no request trees reconstructed");
    }
    let best_err = request_trees
        .iter()
        .map(|t| phase_sum_error(t))
        .fold(f64::INFINITY, f64::min);
    println!(
        "  trace: {} records · {} trees ({} requests) · best phase-sum gap {:.2}%",
        records.len(),
        trees.len(),
        request_trees.len(),
        best_err * 100.0
    );
    if best_err > PHASE_SUM_TOLERANCE {
        fail(&format!(
            "phase durations sum to within {:.1}% of request latency at best, \
             tolerance is {:.0}%",
            best_err * 100.0,
            PHASE_SUM_TOLERANCE * 100.0
        ));
    }

    // --- 4. profile report + SLO evaluation ----------------------------
    let profile = embsr_obs::profile::report();
    println!("  profile: {} shape-bucketed sites", profile.len());
    for entry in profile.iter().take(5) {
        println!(
            "    {} m={} k={} n={}: {} calls · {}us · {:.2} GFLOP/s",
            entry.site,
            entry.m,
            entry.k,
            entry.n,
            entry.calls,
            entry.total_us,
            entry.gflops()
        );
    }
    if profile.is_empty() {
        fail("profiling was enabled but no kernel samples were recorded");
    }

    let mut slo_specs = Vec::new();
    for spec in DEFAULT_SLOS {
        match embsr_obs::slo::SloSpec::parse(spec) {
            Ok(s) => slo_specs.push(s),
            Err(e) => fail(&format!("built-in SLO `{spec}`: {e}")),
        }
    }
    let mut iter = argv.iter();
    while let Some(a) = iter.next() {
        if a == "--slo" {
            let Some(raw) = iter.next() else {
                fail("--slo takes a spec, e.g. serve.request_latency_us:p99<=2000");
            };
            match embsr_obs::slo::SloSpec::parse(raw) {
                Ok(s) => slo_specs.push(s),
                Err(e) => fail(&format!("--slo `{raw}`: {e}")),
            }
        }
    }
    let slo_reports = embsr_obs::slo::evaluate(&slo_specs);
    for r in &slo_reports {
        let state = if r.met { "met" } else { "MISSED" };
        println!(
            "  slo {}: {} (measured {:.0}us over {} samples, budget consumed {:.2})",
            r.spec.display(),
            state,
            r.measured_us,
            r.samples,
            r.budget_consumed
        );
    }

    // --- 5. reports -----------------------------------------------------
    let metric_rows: Vec<JsonValue> = embsr_obs::metrics::snapshot()
        .into_iter()
        .map(|m| {
            let mut pairs = vec![
                ("name", JsonValue::String(m.name)),
                ("kind", JsonValue::String(m.kind.into())),
                ("value", JsonValue::Number(m.value)),
            ];
            if let Some((mean, p50, p95, p99, max)) = m.quantiles {
                pairs.push(("mean", JsonValue::Number(mean)));
                pairs.push(("p50", JsonValue::Number(p50)));
                pairs.push(("p95", JsonValue::Number(p95)));
                pairs.push(("p99", JsonValue::Number(p99)));
                pairs.push(("max", JsonValue::Number(max)));
            }
            JsonValue::object(pairs)
        })
        .collect();
    let trace_summary = JsonValue::object(vec![
        ("file", JsonValue::String(trace_path.display().to_string())),
        ("records", JsonValue::Number(records.len() as f64)),
        ("trees", JsonValue::Number(trees.len() as f64)),
        ("request_trees", JsonValue::Number(request_trees.len() as f64)),
        ("schema_valid", JsonValue::Bool(true)),
        ("best_phase_sum_error", JsonValue::Number(best_err)),
        ("phase_sum_tolerance", JsonValue::Number(PHASE_SUM_TOLERANCE)),
    ]);
    let report = JsonValue::object(vec![
        ("experiment", JsonValue::String("profile".into())),
        ("quick", JsonValue::Bool(quick)),
        ("seed", JsonValue::Number(args.seed as f64)),
        ("vocab", JsonValue::Number(vocab as f64)),
        ("dim", JsonValue::Number(dim as f64)),
        ("engine_workers", JsonValue::Number(workers as f64)),
        (
            "cores_available",
            JsonValue::Number(embsr_obs::manifest::cores_available() as f64),
        ),
        (
            "git_revision",
            JsonValue::String(embsr_obs::manifest::git_revision()),
        ),
        ("trace", trace_summary),
        (
            "profile",
            JsonValue::Array(profile.iter().map(|e| e.to_json_value()).collect()),
        ),
        (
            "slo",
            JsonValue::Array(slo_reports.iter().map(|r| r.to_json_value()).collect()),
        ),
        ("metrics", JsonValue::Array(metric_rows)),
    ]);
    let report_path = args.out_dir.join("profile.json");
    match std::fs::write(&report_path, report.to_json() + "\n") {
        Ok(()) => println!("wrote {}", report_path.display()),
        Err(e) => fail(&format!("cannot write {}: {e}", report_path.display())),
    }

    let slo_all_met = slo_reports.iter().all(|r| r.met);
    let table = JsonValue::object(vec![
        ("bench", JsonValue::String("obs".into())),
        ("quick", JsonValue::Bool(quick)),
        ("seed", JsonValue::Number(args.seed as f64)),
        ("trace_records", JsonValue::Number(records.len() as f64)),
        ("trace_trees", JsonValue::Number(trees.len() as f64)),
        ("schema_valid", JsonValue::Bool(true)),
        ("best_phase_sum_error", JsonValue::Number(best_err)),
        ("profile_sites", JsonValue::Number(profile.len() as f64)),
        ("slo_objectives", JsonValue::Number(slo_reports.len() as f64)),
        ("slo_all_met", JsonValue::Bool(slo_all_met)),
    ]);
    let table_path = Path::new("BENCH_obs.json");
    match std::fs::write(table_path, table.to_json() + "\n") {
        Ok(()) => println!("wrote {}", table_path.display()),
        Err(e) => fail(&format!("cannot write {}: {e}", table_path.display())),
    }

    if enforce_slo && !slo_all_met {
        fail("one or more SLO objectives were missed (--enforce-slo)");
    }
    println!(
        "Shape to verify: every trace line validates against the schema, each \
         request reassembles into a single-rooted span tree, and the best \
         single-session request's phase durations account for >95% of its \
         end-to-end latency."
    );
}
