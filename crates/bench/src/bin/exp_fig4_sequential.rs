//! Experiment F4 — paper Fig. 4: utility of the *sequential* pattern of
//! micro-behaviors on the two JD datasets.
//!
//! Variants: SGNN-Self (no micro info), SGNN-Seq-Self (adds the GRU-encoded
//! sequential pattern), RNN-Self (RNN instead of the GNN), and full EMBSR.

use embsr_bench::{parse_args, run_table, EmbsrVariant, ModelSpec};
use embsr_datasets::DatasetPreset;

fn main() {
    let args = parse_args();
    let ks = [10usize, 20];
    let specs = [
        ModelSpec::Embsr(EmbsrVariant::SgnnSelf),
        ModelSpec::Embsr(EmbsrVariant::SgnnSeqSelf),
        ModelSpec::Embsr(EmbsrVariant::RnnSelf),
        ModelSpec::Embsr(EmbsrVariant::Full),
    ];
    for preset in [DatasetPreset::JdAppliances, DatasetPreset::JdComputers] {
        let dataset = args.dataset(preset);
        embsr_obs::info!(target: "exp::fig4", "{} — 4 variants…", dataset.name);
        let table = run_table(&dataset, &specs, &ks, &args);
        println!("{}", table.render());
    }
    println!("Shape to verify (Fig. 4): EMBSR best everywhere; SGNN-Seq-Self above");
    println!("SGNN-Self (sequential pattern helps); RNN-Self worst, especially on M@K.");
}
