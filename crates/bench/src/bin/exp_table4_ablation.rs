//! Experiment T4 — paper Table IV: ablation study at K = 10, 20.
//!
//! EMBSR-NS (no self-attention), EMBSR-NG (no GNN), EMBSR-NF (no fusion
//! gate) against the full model on all three datasets.

use embsr_bench::{parse_args, run_table, EmbsrVariant, ModelSpec};
use embsr_datasets::DatasetPreset;

fn main() {
    let args = parse_args();
    let ks = [10usize, 20];
    let specs = [
        ModelSpec::Embsr(EmbsrVariant::NoSelfAttention),
        ModelSpec::Embsr(EmbsrVariant::NoGnn),
        ModelSpec::Embsr(EmbsrVariant::NoFusion),
        ModelSpec::Embsr(EmbsrVariant::Full),
    ];
    for preset in DatasetPreset::all() {
        let dataset = args.dataset(preset);
        embsr_obs::info!(target: "exp::table4", "{} — running 4 ablations…", dataset.name);
        let table = run_table(&dataset, &specs, &ks, &args);
        println!("{}", table.render());
    }
    println!("Shape to verify: on the JD-style datasets the full model leads and the");
    println!("single-pattern ablations (NS, NG) trail; EMBSR-NF sits between them.");
}
