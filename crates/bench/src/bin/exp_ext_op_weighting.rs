//! Extension experiment (the paper's future work, Sec. VI): learned
//! per-operation importance weights.
//!
//! Compares full EMBSR against EMBSR+OpW on all three datasets and prints
//! the learned weight of every operation — on the JD-style corpora the
//! intent-bearing operations (add-to-cart, order) should earn higher weights
//! than the miscellaneous ones.

use embsr_bench::{parse_args, run_table, EmbsrVariant, ModelSpec};
use embsr_core::{Embsr, EmbsrConfig};
use embsr_datasets::DatasetPreset;
use embsr_train::{NeuralRecommender, Recommender};

fn main() {
    let args = parse_args();
    let ks = [10usize, 20];
    let specs = [
        ModelSpec::Embsr(EmbsrVariant::Full),
        ModelSpec::Embsr(EmbsrVariant::OpWeighted),
    ];
    for preset in DatasetPreset::all() {
        let dataset = args.dataset(preset);
        embsr_obs::info!(target: "exp::ext_opw", "{} — 2 models…", dataset.name);
        let table = run_table(&dataset, &specs, &ks, &args);
        println!("{}", table.render());

        // retrain once to inspect the learned weights
        embsr_obs::info!(target: "exp::ext_opw", "{} — retraining EMBSR+OpW to read weights…", dataset.name);
        let mut cfg = EmbsrConfig::full_op_weighted(dataset.num_items, dataset.num_ops, args.dim);
        cfg.seed = args.seed;
        let mut rec = NeuralRecommender::new(Embsr::new(cfg), args.train_config());
        rec.fit(&dataset.train, &dataset.val);
        let w = rec.model.operation_importance();
        println!("learned operation importance (op 0 = click, last real op = order,");
        println!("final entry = virtual next-op token):");
        for (i, wi) in w.iter().enumerate() {
            println!("  op {i:>2}: {wi:.3}");
        }
        println!();
    }
    println!("Expectation: weighting never hurts and the terminal-intent operations");
    println!("(cart/order) keep weights ≥ 1 while noise operations are down-weighted.");
}
