//! Experiment F6 — paper Fig. 6: utility of the fusion gating mechanism.
//!
//! Sweeps a fixed fusion weight β ∈ {0, 0.2, 0.4, 0.6, 0.8, 1} and compares
//! against the learned gate, on the two JD datasets.

use embsr_bench::{parse_args, run_table, EmbsrVariant, ModelSpec};
use embsr_datasets::DatasetPreset;

fn main() {
    let args = parse_args();
    let ks = [10usize, 20];
    let betas = [0.0f32, 0.2, 0.4, 0.6, 0.8, 1.0];
    let mut specs: Vec<ModelSpec> = betas
        .iter()
        .map(|&b| ModelSpec::Embsr(EmbsrVariant::FixedBeta(b)))
        .collect();
    specs.push(ModelSpec::Embsr(EmbsrVariant::Full)); // learned gate

    for preset in [DatasetPreset::JdAppliances, DatasetPreset::JdComputers] {
        let dataset = args.dataset(preset);
        embsr_obs::info!(target: "exp::fig6", "{} — β sweep ({} settings)…", dataset.name, specs.len());
        let table = run_table(&dataset, &specs, &ks, &args);
        println!("{}", table.render());
        // also print the series row-wise for plotting
        for (metric, values) in table.rows() {
            let series: Vec<String> = values.iter().map(|v| format!("{v:.2}")).collect();
            println!("series {metric}: β={betas:?} -> {series:?} (last = learned gate)");
        }
        println!();
    }
    println!("Shape to verify (Fig. 6): β = 0 (recent interest only) is worst; large β");
    println!("competitive; the learned fusion gate matches or beats the best fixed β.");
}
