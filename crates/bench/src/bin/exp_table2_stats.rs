//! Experiment T2 — paper Table II: dataset statistics after preprocessing.
//!
//! Prints, for each of the three synthetic datasets, the counts the paper
//! reports (#train/#validation/#test sessions, #items, #micro-behavior) plus
//! the target-repeat ratio that explains the S-POP behaviour on Trivago.

use embsr_bench::parse_args;
use embsr_datasets::DatasetPreset;

fn main() {
    let args = parse_args();
    println!("Table II — dataset statistics (synthetic, scale {:?})\n", args.scale);
    println!(
        "{:<18}{:>10}{:>12}{:>8}{:>9}{:>17}{:>15}",
        "Dataset", "# train", "# validation", "# test", "# items", "# micro-behavior", "target-repeat"
    );
    for preset in DatasetPreset::all() {
        let d = args.dataset(preset);
        println!(
            "{:<18}{:>10}{:>12}{:>8}{:>9}{:>17}{:>15.3}",
            d.name,
            d.train.len(),
            d.val.len(),
            d.test.len(),
            d.num_items,
            d.stats.micro_behaviors,
            d.stats.target_repeat_ratio
        );
    }
    println!("\nPaper reference (Table II): JD datasets have ~32M/24M micro-behaviors over");
    println!("75k/93k items; Trivago 5.7M over 183k items. The synthetic corpora reproduce");
    println!("the structural contrasts (10 vs 6 operations, high vs near-zero repeat ratio)");
    println!("at CPU scale.");
}
