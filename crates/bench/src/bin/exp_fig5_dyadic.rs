//! Experiment F5 — paper Fig. 5: utility of the *dyadic relational* pattern
//! on the two JD datasets.
//!
//! Variants: RNN-Self, SGNN-Self, SGNN-Abs-Self (absolute operation
//! embeddings in standard self-attention), SGNN-Dyadic (dyadic encoding
//! without the op GRU), and full EMBSR.

use embsr_bench::{parse_args, run_table, EmbsrVariant, ModelSpec};
use embsr_datasets::DatasetPreset;

fn main() {
    let args = parse_args();
    let ks = [10usize, 20];
    let specs = [
        ModelSpec::Embsr(EmbsrVariant::RnnSelf),
        ModelSpec::Embsr(EmbsrVariant::SgnnSelf),
        ModelSpec::Embsr(EmbsrVariant::SgnnAbsSelf),
        ModelSpec::Embsr(EmbsrVariant::SgnnDyadic),
        ModelSpec::Embsr(EmbsrVariant::Full),
    ];
    for preset in [DatasetPreset::JdAppliances, DatasetPreset::JdComputers] {
        let dataset = args.dataset(preset);
        embsr_obs::info!(target: "exp::fig5", "{} — 5 variants…", dataset.name);
        let table = run_table(&dataset, &specs, &ks, &args);
        println!("{}", table.render());
    }
    println!("Shape to verify (Fig. 5): SGNN-Dyadic above SGNN-Abs-Self in all cases");
    println!("(pair-wise semantics beat absolute operation embeddings); RNN-Self worst;");
    println!("EMBSR best.");
}
