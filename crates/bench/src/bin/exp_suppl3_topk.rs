//! Experiment S3 — supplemental Table III: top-ranked results at
//! K = 1, 3, 5 for all methods on all datasets (H@1 ≡ M@1).

use embsr_bench::{parse_args, run_table, ModelSpec};
use embsr_datasets::DatasetPreset;

fn main() {
    let args = parse_args();
    let ks = [1usize, 3, 5];
    let specs = ModelSpec::table3();
    for preset in DatasetPreset::all() {
        let dataset = args.dataset(preset);
        embsr_obs::info!(target: "exp::suppl3", "{} — {} models at K=1,3,5…", dataset.name, specs.len());
        let table = run_table(&dataset, &specs, &ks, &args);
        println!("{}", table.render());
        // H@1 must equal M@1 by definition — assert it as a harness check.
        for e in &table.evaluations {
            let (h1, m1) = (e.hit_at(1), e.mrr_at(1));
            assert!(
                (h1 - m1).abs() < 1e-9,
                "H@1 != M@1 for {} ({h1} vs {m1})",
                e.model
            );
        }
    }
    println!("Shape to verify (Suppl. Table III): same ordering as Table III; on the");
    println!("Trivago-style data EMBSR may trail the best baseline at K=1 (the paper");
    println!("reports -2.66%) while leading clearly at K≥3.");
}
