//! Micro-bench: session graph construction.
//!
//! Compares EMBSR's ordered multigraph (Fig. 3) against SR-GNN's normalized
//! digraph — the ablation behind DESIGN.md's "multigraph vs simple graph"
//! design choice — across session lengths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use embsr_baselines::SessionDigraph;
use embsr_sessions::{Session, SessionGraph};
use embsr_tensor::Rng;
use std::hint::black_box;

fn make_session(len: usize, num_items: u32, seed: u64) -> Session {
    let mut rng = Rng::seed_from_u64(seed);
    let pairs: Vec<(u32, u16)> = (0..len)
        .map(|_| (rng.below(num_items as usize) as u32, rng.below(6) as u16))
        .collect();
    Session::from_pairs(0, &pairs)
}

fn bench_graphs(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_construction");
    for &len in &[10usize, 40, 160] {
        let session = make_session(len, 50, 42);
        group.bench_with_input(
            BenchmarkId::new("embsr_multigraph", len),
            &session,
            |b, s| b.iter(|| black_box(SessionGraph::from_session(black_box(s)))),
        );
        group.bench_with_input(
            BenchmarkId::new("srgnn_digraph", len),
            &session,
            |b, s| b.iter(|| black_box(SessionDigraph::from_session(black_box(s)))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_graphs);
criterion_main!(benches);
