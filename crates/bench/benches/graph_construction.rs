//! Micro-bench: session graph construction.
//!
//! Compares EMBSR's ordered multigraph (Fig. 3) against SR-GNN's normalized
//! digraph — the ablation behind DESIGN.md's "multigraph vs simple graph"
//! design choice — across session lengths.

use embsr_baselines::SessionDigraph;
use embsr_obs::bench::{black_box, Bench};
use embsr_sessions::{Session, SessionGraph};
use embsr_tensor::Rng;

fn make_session(len: usize, num_items: u32, seed: u64) -> Session {
    let mut rng = Rng::seed_from_u64(seed);
    let pairs: Vec<(u32, u16)> = (0..len)
        .map(|_| (rng.below(num_items as usize) as u32, rng.below(6) as u16))
        .collect();
    Session::from_pairs(0, &pairs)
}

fn main() {
    let mut bench = Bench::from_env();
    {
        let mut group = bench.group("graph_construction");
        for &len in &[10usize, 40, 160] {
            let session = make_session(len, 50, 42);
            group.bench_function(format!("embsr_multigraph/{len}"), |b| {
                b.iter(|| black_box(SessionGraph::from_session(black_box(&session))))
            });
            group.bench_function(format!("srgnn_digraph/{len}"), |b| {
                b.iter(|| black_box(SessionDigraph::from_session(black_box(&session))))
            });
        }
    }
    bench.finish();
}
