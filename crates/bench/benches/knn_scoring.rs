//! Micro-bench: non-neural scoring throughput (SKNN vs STAN vs S-POP) on a
//! realistic training index.

use criterion::{criterion_group, criterion_main, Criterion};
use embsr_baselines::{Sknn, SPop, Stan};
use embsr_datasets::{build_dataset, DatasetPreset, SyntheticConfig};
use embsr_train::Recommender;
use std::hint::black_box;

fn bench_knn(c: &mut Criterion) {
    let mut cfg = SyntheticConfig::tiny(DatasetPreset::JdAppliances);
    cfg.num_sessions = 1000;
    let data = build_dataset(&cfg);
    let query = &data.test[0].session;

    let mut group = c.benchmark_group("knn_scoring");

    let mut sknn = Sknn::new(data.num_items);
    sknn.fit(&data.train, &data.val);
    group.bench_function("sknn", |b| b.iter(|| black_box(sknn.scores(black_box(query)))));

    let mut stan = Stan::new(data.num_items);
    stan.fit(&data.train, &data.val);
    group.bench_function("stan", |b| b.iter(|| black_box(stan.scores(black_box(query)))));

    let mut spop = SPop::new(data.num_items);
    spop.fit(&data.train, &data.val);
    group.bench_function("spop", |b| b.iter(|| black_box(spop.scores(black_box(query)))));

    group.finish();
}

criterion_group!(benches, bench_knn);
criterion_main!(benches);
