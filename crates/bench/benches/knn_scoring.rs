//! Micro-bench: non-neural scoring throughput (SKNN vs STAN vs S-POP) on a
//! realistic training index.

use embsr_baselines::{SPop, Sknn, Stan};
use embsr_datasets::{build_dataset, DatasetPreset, SyntheticConfig};
use embsr_obs::bench::{black_box, Bench};
use embsr_train::Recommender;

fn main() {
    let mut cfg = SyntheticConfig::tiny(DatasetPreset::JdAppliances);
    cfg.num_sessions = 1000;
    let data = build_dataset(&cfg);
    let query = &data.test[0].session;

    let mut bench = Bench::from_env();
    {
        let mut group = bench.group("knn_scoring");

        let mut sknn = Sknn::new(data.num_items);
        sknn.fit(&data.train, &data.val);
        group.bench_function("sknn", |b| b.iter(|| black_box(sknn.scores(black_box(query)))));

        let mut stan = Stan::new(data.num_items);
        stan.fit(&data.train, &data.val);
        group.bench_function("stan", |b| b.iter(|| black_box(stan.scores(black_box(query)))));

        let mut spop = SPop::new(data.num_items);
        spop.fit(&data.train, &data.val);
        group.bench_function("spop", |b| b.iter(|| black_box(spop.scores(black_box(query)))));
    }
    bench.finish();
}
