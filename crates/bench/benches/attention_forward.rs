//! Micro-bench: operation-aware self-attention forward pass.
//!
//! The ablation behind the dyadic-relation design choice: the extended
//! attention (eq. 14–16) versus standard self-attention, across sequence
//! lengths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use embsr_nn::OpAwareSelfAttention;
use embsr_tensor::{Rng, Tensor};
use std::hint::black_box;

fn bench_attention(c: &mut Criterion) {
    let dim = 32;
    let num_ops = 10;
    let mut group = c.benchmark_group("attention_forward");
    for &t in &[8usize, 24, 48] {
        let mut rng = Rng::seed_from_u64(1);
        let xs = Tensor::from_vec(
            (0..t * dim).map(|_| rng.uniform_range(-0.5, 0.5)).collect(),
            &[t, dim],
        );
        let ops: Vec<usize> = (0..t).map(|i| i % num_ops).collect();

        let dyadic = OpAwareSelfAttention::new(dim, num_ops, 64, true, &mut rng);
        group.bench_with_input(BenchmarkId::new("dyadic", t), &t, |b, _| {
            b.iter(|| black_box(dyadic.forward(black_box(&xs), black_box(&ops))))
        });

        let standard = OpAwareSelfAttention::new(dim, num_ops, 64, false, &mut rng);
        group.bench_with_input(BenchmarkId::new("standard", t), &t, |b, _| {
            b.iter(|| black_box(standard.forward(black_box(&xs), black_box(&ops))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_attention);
criterion_main!(benches);
