//! Micro-bench: operation-aware self-attention forward pass.
//!
//! The ablation behind the dyadic-relation design choice: the extended
//! attention (eq. 14–16) versus standard self-attention, across sequence
//! lengths.

use embsr_nn::OpAwareSelfAttention;
use embsr_obs::bench::{black_box, Bench};
use embsr_tensor::{Rng, Tensor};

fn main() {
    let dim = 32;
    let num_ops = 10;
    let mut bench = Bench::from_env();
    {
        let mut group = bench.group("attention_forward");
        for &t in &[8usize, 24, 48] {
            let mut rng = Rng::seed_from_u64(1);
            let xs = Tensor::from_vec(
                (0..t * dim).map(|_| rng.uniform_range(-0.5, 0.5)).collect(),
                &[t, dim],
            );
            let ops: Vec<usize> = (0..t).map(|i| i % num_ops).collect();

            let dyadic = OpAwareSelfAttention::new(dim, num_ops, 64, true, &mut rng);
            group.bench_function(format!("dyadic/{t}"), |b| {
                b.iter(|| black_box(dyadic.attend(black_box(&xs), black_box(&ops))))
            });

            let standard = OpAwareSelfAttention::new(dim, num_ops, 64, false, &mut rng);
            group.bench_function(format!("standard/{t}"), |b| {
                b.iter(|| black_box(standard.attend(black_box(&xs), black_box(&ops))))
            });
        }
    }
    bench.finish();
}
