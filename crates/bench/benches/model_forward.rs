//! Micro-bench: full-model inference (one session → full-vocabulary
//! logits) for EMBSR and its main variants — quantifies the cost of each
//! architectural component.

use embsr_core::{Embsr, EmbsrConfig};
use embsr_obs::bench::{black_box, Bench};
use embsr_sessions::Session;
use embsr_tensor::Rng;
use embsr_train::SessionModel;

fn make_session(len: usize, num_items: u32, num_ops: u16) -> Session {
    let mut rng = Rng::seed_from_u64(3);
    let pairs: Vec<(u32, u16)> = (0..len)
        .map(|_| {
            (
                rng.below(num_items as usize) as u32,
                rng.below(num_ops as usize) as u16,
            )
        })
        .collect();
    Session::from_pairs(0, &pairs)
}

fn main() {
    let (v, o, d) = (500usize, 10usize, 32usize);
    let session = make_session(20, v as u32, o as u16);
    let variants: Vec<(&str, EmbsrConfig)> = vec![
        ("EMBSR", EmbsrConfig::full(v, o, d)),
        ("EMBSR-NS", EmbsrConfig::ablation_ns(v, o, d)),
        ("EMBSR-NG", EmbsrConfig::ablation_ng(v, o, d)),
        ("SGNN-Self", EmbsrConfig::sgnn_self(v, o, d)),
        ("RNN-Self", EmbsrConfig::rnn_self(v, o, d)),
    ];
    let mut bench = Bench::from_env();
    {
        let mut group = bench.group("model_forward");
        for (name, cfg) in variants {
            let model = Embsr::new(cfg);
            group.bench_function(format!("logits/{name}"), |b| {
                let mut rng = Rng::seed_from_u64(0);
                b.iter(|| black_box(model.logits(black_box(&session), false, &mut rng)))
            });
        }
    }
    bench.finish();
}
