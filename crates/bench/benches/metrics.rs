//! Micro-bench: metric computation throughput — ranking a target among the
//! full vocabulary and the Wilcoxon test over per-session reciprocal ranks.

use embsr_eval::{rank_of_target, wilcoxon_signed_rank};
use embsr_obs::bench::{black_box, Bench};
use embsr_tensor::Rng;

fn main() {
    let mut bench = Bench::from_env();
    {
        let mut group = bench.group("metrics");
        for &v in &[1_000usize, 10_000, 100_000] {
            let mut rng = Rng::seed_from_u64(7);
            let scores: Vec<f32> = (0..v).map(|_| rng.uniform()).collect();
            group.bench_function(format!("rank_of_target/{v}"), |b| {
                b.iter(|| black_box(rank_of_target(black_box(&scores), v / 2)))
            });
        }

        let mut rng = Rng::seed_from_u64(8);
        let a: Vec<f64> = (0..5_000).map(|_| rng.uniform() as f64).collect();
        let b2: Vec<f64> = a.iter().map(|x| x * 0.9 + 0.01).collect();
        group.bench_function("wilcoxon_5000_pairs", |b| {
            b.iter(|| black_box(wilcoxon_signed_rank(black_box(&a), black_box(&b2))))
        });
    }
    bench.finish();
}
