//! Micro-bench: one training step (forward + backward + Adam) for EMBSR and
//! the strongest baseline, SGNN-HN.

use embsr_baselines::SgnnHn;
use embsr_core::{Embsr, EmbsrConfig};
use embsr_obs::bench::{black_box, Bench};
use embsr_sessions::Session;
use embsr_tensor::{Adam, AdamConfig, Optimizer, Rng};
use embsr_train::SessionModel;

fn make_session(len: usize, num_items: u32, num_ops: u16) -> Session {
    let mut rng = Rng::seed_from_u64(5);
    let pairs: Vec<(u32, u16)> = (0..len)
        .map(|_| {
            (
                rng.below(num_items as usize) as u32,
                rng.below(num_ops as usize) as u16,
            )
        })
        .collect();
    Session::from_pairs(0, &pairs)
}

fn step<M: SessionModel>(model: &M, opt: &mut Adam, session: &Session, rng: &mut Rng) {
    opt.zero_grad();
    let loss = model.logits(session, true, rng).cross_entropy_single(3);
    loss.backward();
    opt.step();
}

fn main() {
    let (v, o, d) = (500usize, 10usize, 32usize);
    let session = make_session(16, v as u32, o as u16);
    let mut bench = Bench::from_env();
    {
        let mut group = bench.group("training_step");

        let embsr = Embsr::new(EmbsrConfig::full(v, o, d));
        let mut opt1 = Adam::new(embsr.parameters(), AdamConfig::default());
        group.bench_function("embsr", |b| {
            let mut rng = Rng::seed_from_u64(0);
            b.iter(|| step(black_box(&embsr), &mut opt1, &session, &mut rng))
        });

        let sgnn = SgnnHn::new(v, d, 1);
        let mut opt2 = Adam::new(sgnn.parameters(), AdamConfig::default());
        group.bench_function("sgnn_hn", |b| {
            let mut rng = Rng::seed_from_u64(0);
            b.iter(|| step(black_box(&sgnn), &mut opt2, &session, &mut rng))
        });
    }
    bench.finish();
}
