//! # embsr-core
//!
//! The EMBSR model — *Encoding Micro-Behaviors in Session-based
//! Recommendation* (ICDE 2022) — implemented exactly as Sec. IV of the
//! paper describes, plus a configuration switchboard producing every ablation
//! and variant used in the paper's evaluation:
//!
//! * **Sequential patterns** (Sec. IV-B): the session is converted to a
//!   directed multigraph with ordered edges; each macro item's
//!   micro-operation sub-sequence is encoded by a GRU and injected into the
//!   GNN messages; gated graph updates, star-node propagation and a highway
//!   blend produce the item representations.
//! * **Dyadic relational patterns** (Sec. IV-C): an operation-aware
//!   self-attention with a `|O|²` dyadic relation table relates operation
//!   *pairs* across positions.
//! * **Prediction** (Sec. IV-D): a fusion gate combines global preference
//!   and recent interest; scores are scaled cosines (`w_k = 12`).
//!
//! ## Variants
//!
//! | constructor | paper name | section |
//! |---|---|---|
//! | [`EmbsrConfig::full`] | EMBSR | Table III |
//! | [`EmbsrConfig::ablation_ns`] | EMBSR-NS | Table IV |
//! | [`EmbsrConfig::ablation_ng`] | EMBSR-NG | Table IV |
//! | [`EmbsrConfig::ablation_nf`] | EMBSR-NF | Table IV |
//! | [`EmbsrConfig::sgnn_self`] | SGNN-Self | Fig. 4/5 |
//! | [`EmbsrConfig::sgnn_seq_self`] | SGNN-Seq-Self | Fig. 4 |
//! | [`EmbsrConfig::rnn_self`] | RNN-Self | Fig. 4/5 |
//! | [`EmbsrConfig::sgnn_abs_self`] | SGNN-Abs-Self | Fig. 5 |
//! | [`EmbsrConfig::sgnn_dyadic`] | SGNN-Dyadic / EMBSR-Dyadic | Fig. 5, Suppl. Table II |
//! | [`EmbsrConfig::fixed_beta`] | β sweep | Fig. 6 |

mod config;
mod model;

pub use config::{Backbone, EmbsrConfig};
pub use model::Embsr;
pub use embsr_nn::FusionMode;
