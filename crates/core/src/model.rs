//! The EMBSR model (paper Sec. IV) and its forward pass.

use embsr_nn::{
    Dropout, Embedding, Ffn, Forward, FusionGate, GgnnCell, Gru, Highway, Linear, Module,
    ModuleCtx, NormalizedScorer, OpAwareSelfAttention, StarAttention, StarGate,
};
use embsr_sessions::{Session, SessionGraph};
use embsr_tensor::{Rng, Tensor};
use embsr_train::SessionModel;

use crate::config::{Backbone, EmbsrConfig};

/// The EMBSR model family. Construct via [`EmbsrConfig`] (see the variant
/// constructors) and train with [`embsr_train::Trainer`].
pub struct Embsr {
    cfg: EmbsrConfig,
    /// Item table `M^V`.
    items: Embedding,
    /// Operation table `M^O` (with the virtual "next" op appended).
    ops: Embedding,
    /// GRU over micro-operation sub-sequences (eq. 3).
    op_gru: Gru,
    /// Incoming / outgoing message functions `f_m^+`, `f_m^-` (eq. 6).
    msg_in: Linear,
    msg_out: Linear,
    /// Gated graph update (eq. 8).
    ggnn: GgnnCell,
    /// Star propagation (eq. 9–10).
    star_gate: StarGate,
    star_attn: StarAttention,
    /// Highway blend (eq. 11).
    highway: Highway,
    /// Operation-aware self-attention (eq. 12–16).
    attention: OpAwareSelfAttention,
    /// Position-wise FFN block (eq. 17).
    ffn: Ffn,
    /// Fusion gate (eq. 18).
    fusion: FusionGate,
    /// Scaled-cosine scorer (eq. 19).
    scorer: NormalizedScorer,
    /// RNN backbone for the `RNN-Self` variant.
    rnn: Gru,
    dropout: Dropout,
    /// Per-operation importance logits (σ(·)·2 gives the weight), used only
    /// when `use_op_weighting` is on. Initialized at 0 ⇒ weight 1.
    op_importance: Tensor,
}

impl Embsr {
    /// Builds the model with deterministic initialization from `cfg.seed`.
    pub fn new(cfg: EmbsrConfig) -> Self {
        cfg.validate();
        let mut rng = Rng::seed_from_u64(cfg.seed);
        let d = cfg.dim;
        let ops_v = cfg.ops_with_virtual();
        embsr_obs::debug!(
            target: "embsr_core",
            "building EMBSR: |V|={} |O|={} dim={} dyadic={} seed={}",
            cfg.num_items,
            cfg.num_ops,
            d,
            cfg.use_dyadic,
            cfg.seed
        );
        Embsr {
            items: Embedding::new(cfg.num_items, d, &mut rng),
            ops: Embedding::new(ops_v, d, &mut rng),
            op_gru: Gru::new(d, d, &mut rng),
            msg_in: Linear::new(2 * d, d, &mut rng),
            msg_out: Linear::new(2 * d, d, &mut rng),
            ggnn: GgnnCell::new(d, &mut rng),
            star_gate: StarGate::new(d, &mut rng),
            star_attn: StarAttention::new(d, &mut rng),
            highway: Highway::new(d, &mut rng),
            attention: OpAwareSelfAttention::new(d, ops_v, cfg.max_len + 1, cfg.use_dyadic, &mut rng),
            ffn: Ffn::new(d, cfg.dropout, &mut rng),
            fusion: FusionGate::new(d, cfg.fusion, &mut rng),
            scorer: NormalizedScorer::new(cfg.w_k),
            rnn: Gru::new(2 * d, d, &mut rng),
            dropout: Dropout::new(cfg.dropout),
            op_importance: Tensor::zeros(&[ops_v, 1]).requires_grad(),
            cfg,
        }
    }

    /// Looks up operation embeddings, scaled by the learned per-operation
    /// importance when the extension is enabled:
    /// `e'_o = 2σ(w_o) · e_o` (weight 1 at init, 0 ⇒ filtered out).
    fn op_embeddings(&self, ops: &[usize]) -> Tensor {
        let embs = self.ops.lookup(ops);
        if !self.cfg.use_op_weighting {
            return embs;
        }
        let w = self
            .op_importance
            .gather_rows(ops)
            .sigmoid()
            .mul_scalar(2.0); // [k, 1]
        embs.mul(&w.matmul(&Tensor::ones(&[1, self.cfg.dim])))
    }

    /// The learned importance weight of each operation (for inspection and
    /// the ablation bench). Length `|O| + 1` (the virtual next-op last).
    pub fn operation_importance(&self) -> Vec<f32> {
        self.op_importance
            .to_vec()
            .iter()
            .map(|&x| 2.0 / (1.0 + (-x).exp()))
            .collect()
    }

    /// The configuration this model was built with.
    pub fn config(&self) -> &EmbsrConfig {
        &self.cfg
    }

    // ------------------------------------------------------------------
    // Sequential-pattern encoder (Sec. IV-B)
    // ------------------------------------------------------------------

    /// Encodes each macro step's operation sub-sequence with the GRU
    /// (eq. 3–4). Returns `h̃ ∈ [n, d]`, or zeros when the op GRU is ablated.
    fn op_sequence_encodings(&self, graph: &SessionGraph) -> Tensor {
        let n = graph.num_steps();
        let d = self.cfg.dim;
        if !self.cfg.use_op_gru {
            return Tensor::zeros(&[n, d]);
        }
        // One embedding lookup per step; the GRU batches the sub-sequences
        // itself (lockstep under inference, per-step taped loop otherwise).
        let embs: Vec<Tensor> = graph
            .steps
            .iter()
            .map(|step| {
                let idx: Vec<usize> = step.ops.iter().map(|&o| o as usize).collect();
                self.op_embeddings(&idx) // [k, d]
            })
            .collect();
        let refs: Vec<&Tensor> = embs.iter().collect();
        self.op_gru.last_states(&refs) // [n, d]
    }

    /// Builds the constant scatter matrix `[c, E]` mapping edge messages to
    /// their aggregating node (eq. 7); returns `None` when the edge list is
    /// empty.
    fn scatter_matrix(num_nodes: usize, owners: &[usize]) -> Option<Tensor> {
        if owners.is_empty() {
            return None;
        }
        let e = owners.len();
        let mut a = vec![0.0f32; num_nodes * e];
        for (col, &node) in owners.iter().enumerate() {
            a[node * e + col] = 1.0;
        }
        Some(Tensor::from_vec(a, &[num_nodes, e]))
    }

    /// One direction of message passing: gathers `[e_{u_j} ; h̃_j]` per edge,
    /// applies the message function, and scatter-sums per node (eq. 5–7).
    fn aggregate_direction(
        &self,
        node_embs: &Tensor,
        h_tilde: &Tensor,
        edges: &[Vec<embsr_sessions::EdgeEndpoint>],
        msg: &Linear,
    ) -> Tensor {
        let c = node_embs.rows();
        let d = self.cfg.dim;
        let mut owners = Vec::new();
        let mut src_nodes = Vec::new();
        let mut src_steps = Vec::new();
        for (i, es) in edges.iter().enumerate() {
            for e in es {
                owners.push(i);
                src_nodes.push(e.node);
                src_steps.push(e.step);
            }
        }
        match Self::scatter_matrix(c, &owners) {
            None => Tensor::zeros(&[c, d]),
            Some(scatter) => {
                let neigh = node_embs.gather_rows(&src_nodes); // [E, d]
                let seqs = h_tilde.gather_rows(&src_steps); // [E, d]
                let messages = msg.apply(&neigh.concat_cols(&seqs)); // [E, d]
                scatter.matmul(&messages) // [c, d]
            }
        }
    }

    /// Runs the star-GNN stack and returns `(h_f, e_us)`: the final satellite
    /// representations `[c, d]` and the star embedding `[d]`.
    fn encode_graph(&self, graph: &SessionGraph) -> (Tensor, Tensor) {
        let node_idx: Vec<usize> = graph.nodes.iter().map(|&i| i as usize).collect();
        let h0 = self.items.lookup(&node_idx); // [c, d] (eq. 1)
        let mut star = h0.mean_rows(); // [d] (eq. 2)

        if self.cfg.backbone != Backbone::StarGnn {
            return (h0, star);
        }

        let h_tilde = self.op_sequence_encodings(graph);
        let mut h = h0.clone();
        for _ in 0..self.cfg.gnn_layers {
            let agg_in = self.aggregate_direction(&h, &h_tilde, &graph.in_edges, &self.msg_in);
            let agg_out = self.aggregate_direction(&h, &h_tilde, &graph.out_edges, &self.msg_out);
            let a = agg_in.concat_cols(&agg_out); // [c, 2d] (eq. 7)
            let updated = self.ggnn.update(&a, &h); // (eq. 8)
            h = self.star_gate.propagate(&updated, &star); // (eq. 9)
            star = self.star_attn.attend(&h, &star); // (eq. 10)
        }
        let h_f = self.highway.blend(&h0, &h); // (eq. 11)
        (h_f, star)
    }

    // ------------------------------------------------------------------
    // Attention inputs (eq. 12–13)
    // ------------------------------------------------------------------

    /// Builds the micro-level input sequence `X_t` (`[t, d]`) and the per-row
    /// operation ids; item representations come from the satellite rows.
    fn attention_inputs(&self, session: &Session, graph: &SessionGraph, h_f: &Tensor) -> (Tensor, Vec<usize>) {
        // map each micro event to its macro step (and thus its node)
        let mut event_nodes = Vec::with_capacity(session.len());
        let mut event_ops = Vec::with_capacity(session.len());
        let mut step = 0usize;
        let mut remaining = graph.steps[0].ops.len();
        for e in &session.events {
            if remaining == 0 {
                step += 1;
                remaining = graph.steps[step].ops.len();
            }
            event_nodes.push(graph.step_node[step]);
            event_ops.push(e.op as usize);
            remaining -= 1;
        }
        let item_part = h_f.gather_rows(&event_nodes); // [t, d]
        let xs = if self.cfg.use_abs_op {
            item_part.add(&self.op_embeddings(&event_ops))
        } else {
            item_part
        };
        (xs, event_ops)
    }

    /// RNN-Self backbone: GRU over `[e_v ; e_o]` per micro event; returns
    /// the hidden states `[t, d]`.
    fn encode_rnn(&self, session: &Session) -> Tensor {
        let items: Vec<usize> = session.events.iter().map(|e| e.item as usize).collect();
        let ops: Vec<usize> = session.events.iter().map(|e| e.op as usize).collect();
        let ev = self.items.lookup(&items); // [t, d]
        let eo = self.ops.lookup(&ops); // [t, d]
        self.rnn.apply(&ev.concat_cols(&eo)) // [t, d]
    }

    /// Everything before scoring: encodes the (internally truncated) session
    /// into the fused representation `m ∈ [d]` of eq. 18.
    ///
    /// [`SessionModel::logits`] scores one representation at a time;
    /// [`SessionModel::logits_batch`] stacks many and amortizes the scorer's
    /// item-table normalization across the batch.
    fn session_repr(&self, session: &Session, training: bool, rng: &mut Rng) -> Tensor {
        assert!(!session.is_empty(), "representation of an empty session");
        let sess = embsr_train::truncate_session(session, self.cfg.max_len);
        let d = self.cfg.dim;

        // --- encode items -------------------------------------------------
        let (xs, event_ops, global) = match self.cfg.backbone {
            Backbone::StarGnn | Backbone::None => {
                let graph = SessionGraph::from_session(&sess);
                let (h_f, star) = self.encode_graph(&graph);
                let (xs, ops) = self.attention_inputs(&sess, &graph, &h_f);
                (xs, ops, star)
            }
            Backbone::Rnn => {
                let hidden = self.encode_rnn(&sess); // [t, d]
                let ops: Vec<usize> = sess.events.iter().map(|e| e.op as usize).collect();
                let global = hidden.mean_rows();
                (hidden, ops, global)
            }
        };
        let t = xs.rows();
        let x_t = xs.row(t - 1); // recent interest (eq. 18 input)

        // --- relational-pattern encoder (eq. 12–17) ------------------------
        let z_s = if self.cfg.use_attention {
            // star token x_s = e_us + e_{o_{t+1}} (eq. 13); the next
            // operation is unknown, so a dedicated learned id stands in.
            let x_s = if self.cfg.use_abs_op {
                global.add(&self.ops.lookup_one(self.cfg.virtual_next_op()))
            } else {
                global.clone()
            };
            let mut ctx = ModuleCtx::new(training, rng);
            let full = Tensor::concat_rows(&[xs.clone(), x_s.reshape(&[1, d])]);
            let full = self.dropout.forward(&full, &mut ctx);
            let mut att_ops = event_ops.clone();
            att_ops.push(self.cfg.virtual_next_op());
            let z = self.attention.attend(&full, &att_ops); // [t+1, d]
            let z_star = z.slice_rows(t, t + 1); // [1, d]
            self.ffn.forward(&z_star, &mut ctx).reshape(&[d])
        } else {
            global
        };

        // --- fusion (eq. 18) ----------------------------------------------
        self.fusion.fuse(&z_s, &x_t)
    }
}

impl SessionModel for Embsr {
    fn name(&self) -> &str {
        &self.cfg.name
    }

    fn num_items(&self) -> usize {
        self.cfg.num_items
    }

    fn parameters(&self) -> Vec<Tensor> {
        // Only the modules the configured forward pass can reach are handed
        // to the optimizer; anything else would be a detached parameter that
        // silently never trains (and that the graph validator flags). The
        // conditions below mirror `logits` exactly: checkpoints stay
        // positionally consistent because save and load share the config.
        let star = self.cfg.backbone == Backbone::StarGnn;
        let op_gru_active = star && self.cfg.use_op_gru;
        let abs_op_active = self.cfg.use_abs_op && self.cfg.backbone != Backbone::Rnn;
        let ops_active = self.cfg.backbone == Backbone::Rnn
            || op_gru_active
            || abs_op_active
            || (self.cfg.use_attention && self.cfg.use_abs_op);

        let mut modules: Vec<&dyn Module> = vec![&self.items];
        if ops_active {
            modules.push(&self.ops);
        }
        if op_gru_active {
            modules.push(&self.op_gru);
        }
        if star {
            modules.push(&self.msg_in);
            modules.push(&self.msg_out);
            modules.push(&self.ggnn);
            modules.push(&self.star_gate);
            modules.push(&self.star_attn);
            modules.push(&self.highway);
        }
        if self.cfg.use_attention {
            modules.push(&self.attention);
            modules.push(&self.ffn);
        }
        let mut p: Vec<Tensor> = modules.iter().flat_map(|m| m.parameters()).collect();
        p.extend(self.fusion.parameters());
        if self.cfg.backbone == Backbone::Rnn {
            p.extend(self.rnn.parameters());
        }
        if self.cfg.use_op_weighting && (op_gru_active || abs_op_active) {
            p.push(self.op_importance.clone());
        }
        p
    }

    fn logits(&self, session: &Session, training: bool, rng: &mut Rng) -> Tensor {
        let m = self.session_repr(session, training, rng);
        self.scorer.logits(&m, &self.items.weight) // (eq. 19)
    }

    fn logits_batch(&self, sessions: &[&Session]) -> Tensor {
        assert!(!sessions.is_empty(), "logits_batch of an empty batch");
        let mut rng = Rng::seed_from_u64(0); // dropout is off: never drawn from
        let reprs: Vec<Tensor> = sessions
            .iter()
            .map(|s| self.session_repr(s, false, &mut rng))
            .collect();
        // One GEMM scores the whole batch; the item table is normalized once
        // instead of once per session.
        self.scorer
            .logits_rows(&Tensor::stack_rows(&reprs), &self.items.weight)
    }

    fn repr_infer(&self, session: &Session) -> Option<Tensor> {
        let mut rng = Rng::seed_from_u64(0); // dropout is off: never drawn from
        Some(self.session_repr(session, false, &mut rng))
    }

    fn logits_of_reprs(&self, reprs: &Tensor) -> Option<Tensor> {
        Some(self.scorer.logits_rows(reprs, &self.items.weight))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use embsr_sessions::MicroBehavior;
    use embsr_tensor::{Adam, AdamConfig, Optimizer};

    fn session(pairs: &[(u32, u16)]) -> Session {
        Session {
            id: 0,
            events: pairs
                .iter()
                .map(|&(i, o)| MicroBehavior { item: i, op: o })
                .collect(),
        }
    }

    fn all_variants(v: usize, o: usize, d: usize) -> Vec<Embsr> {
        vec![
            Embsr::new(EmbsrConfig::full(v, o, d)),
            Embsr::new(EmbsrConfig::ablation_ns(v, o, d)),
            Embsr::new(EmbsrConfig::ablation_ng(v, o, d)),
            Embsr::new(EmbsrConfig::ablation_nf(v, o, d)),
            Embsr::new(EmbsrConfig::sgnn_self(v, o, d)),
            Embsr::new(EmbsrConfig::sgnn_seq_self(v, o, d)),
            Embsr::new(EmbsrConfig::rnn_self(v, o, d)),
            Embsr::new(EmbsrConfig::sgnn_abs_self(v, o, d)),
            Embsr::new(EmbsrConfig::sgnn_dyadic(v, o, d)),
            Embsr::new(EmbsrConfig::fixed_beta(v, o, d, 0.4)),
        ]
    }

    #[test]
    fn every_variant_produces_full_vocabulary_logits() {
        let s = session(&[(1, 0), (1, 1), (2, 0), (3, 2), (2, 1)]);
        let mut rng = Rng::seed_from_u64(0);
        for model in all_variants(6, 4, 8) {
            let y = model.logits(&s, false, &mut rng);
            assert_eq!(y.len(), 6, "{}", model.name());
            assert!(
                y.to_vec().iter().all(|v| v.is_finite()),
                "{} produced non-finite logits",
                model.name()
            );
        }
    }

    #[test]
    fn logits_bounded_by_wk() {
        let model = Embsr::new(EmbsrConfig::full(5, 3, 8));
        let s = session(&[(0, 0), (1, 1), (2, 2)]);
        let y = model.logits(&s, false, &mut Rng::seed_from_u64(1)).to_vec();
        assert!(y.iter().all(|v| v.abs() <= 12.0 + 1e-3));
    }

    #[test]
    fn operations_change_predictions_of_full_model() {
        // same items, different micro-operations => different scores
        let model = Embsr::new(EmbsrConfig::full(6, 4, 8));
        let mut rng = Rng::seed_from_u64(2);
        let a = model
            .logits(&session(&[(1, 0), (2, 0), (3, 0)]), false, &mut rng)
            .to_vec();
        let b = model
            .logits(&session(&[(1, 0), (2, 2), (3, 1)]), false, &mut rng)
            .to_vec();
        assert_ne!(a, b);
    }

    #[test]
    fn operations_do_not_change_sgnn_self() {
        let model = Embsr::new(EmbsrConfig::sgnn_self(6, 4, 8));
        let mut rng = Rng::seed_from_u64(3);
        let a = model
            .logits(&session(&[(1, 0), (2, 0), (3, 0)]), false, &mut rng)
            .to_vec();
        let b = model
            .logits(&session(&[(1, 0), (2, 2), (3, 1)]), false, &mut rng)
            .to_vec();
        assert_eq!(a, b);
    }

    #[test]
    fn gradient_reaches_core_tables() {
        let model = Embsr::new(EmbsrConfig::full(6, 4, 8));
        let s = session(&[(1, 0), (2, 1), (1, 2), (3, 0)]);
        let mut rng = Rng::seed_from_u64(4);
        model
            .logits(&s, true, &mut rng)
            .cross_entropy_single(4)
            .backward();
        assert!(model.items.weight.grad().is_some(), "item table");
        assert!(model.ops.weight.grad().is_some(), "op table");
    }

    #[test]
    fn single_macro_item_session_is_handled() {
        // evaluation can present a prefix with one macro item
        let model = Embsr::new(EmbsrConfig::full(4, 3, 8));
        let s = session(&[(2, 0), (2, 1)]);
        let y = model.logits(&s, false, &mut Rng::seed_from_u64(5));
        assert_eq!(y.len(), 4);
        assert!(y.to_vec().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn training_reduces_loss_on_toy_pattern() {
        // op 2 on item 1 => next is item 2; op 1 on item 1 => next is item 3
        let model = Embsr::new(EmbsrConfig::full(5, 4, 8));
        let mut opt = Adam::new(
            model.parameters(),
            AdamConfig {
                lr: 0.02,
                ..Default::default()
            },
        );
        let data = [
            (session(&[(0, 0), (1, 0), (1, 2)]), 2usize),
            (session(&[(0, 0), (1, 0), (1, 1)]), 3usize),
        ];
        let mut rng = Rng::seed_from_u64(6);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..60 {
            opt.zero_grad();
            let mut loss = Tensor::scalar(0.0);
            for (s, target) in &data {
                loss = loss.add(&model.logits(s, true, &mut rng).cross_entropy_single(*target));
            }
            last = loss.item();
            first.get_or_insert(last);
            loss.backward();
            opt.step();
        }
        let first = first.unwrap();
        assert!(
            last < first * 0.5,
            "EMBSR failed to fit micro-behavior toy task: {first} -> {last}"
        );
    }

    #[test]
    fn truncation_is_applied_internally() {
        let mut cfg = EmbsrConfig::full(4, 3, 8);
        cfg.max_len = 4;
        let model = Embsr::new(cfg);
        let long: Vec<(u32, u16)> = (0..20).map(|i| ((i % 4) as u32, 0u16)).collect();
        let y = model.logits(&session(&long), false, &mut Rng::seed_from_u64(7));
        assert_eq!(y.len(), 4);
    }

    #[test]
    fn op_weighting_extension_trains_and_reports_weights() {
        let model = Embsr::new(EmbsrConfig::full_op_weighted(6, 4, 8));
        // weights start at exactly 1 (logit 0)
        let w0 = model.operation_importance();
        assert_eq!(w0.len(), 5);
        assert!(w0.iter().all(|&w| (w - 1.0).abs() < 1e-6));

        let s = session(&[(1, 0), (2, 1), (3, 2)]);
        let mut rng = Rng::seed_from_u64(8);
        model
            .logits(&s, true, &mut rng)
            .cross_entropy_single(4)
            .backward();
        assert!(
            model.op_importance.grad().is_some(),
            "importance weights must receive gradients"
        );
        // the extension adds exactly one parameter tensor
        let base = Embsr::new(EmbsrConfig::full(6, 4, 8));
        assert_eq!(model.parameters().len(), base.parameters().len() + 1);
    }

    #[test]
    fn op_weighting_off_keeps_importance_frozen() {
        let model = Embsr::new(EmbsrConfig::full(6, 4, 8));
        let s = session(&[(1, 0), (2, 1)]);
        let mut rng = Rng::seed_from_u64(9);
        model
            .logits(&s, true, &mut rng)
            .cross_entropy_single(3)
            .backward();
        assert!(model.op_importance.grad().is_none());
    }

    #[test]
    fn parameter_count_is_substantial() {
        let model = Embsr::new(EmbsrConfig::full(100, 10, 16));
        let n: usize = model.parameters().iter().map(Tensor::len).sum();
        assert!(n > 100 * 16, "suspiciously few parameters: {n}");
    }

    #[test]
    fn every_variant_has_zero_detached_parameters() {
        // parameters() must hand the optimizer exactly the tensors the
        // configured forward pass can reach; the graph validator verifies
        // this against the real loss graph for every paper variant.
        let s = session(&[(1, 0), (1, 1), (2, 0), (3, 2), (2, 1)]);
        let mut models = all_variants(6, 4, 8);
        models.push(Embsr::new(EmbsrConfig::full_op_weighted(6, 4, 8)));
        for model in models {
            let mut rng = Rng::seed_from_u64(10);
            let loss = model.logits(&s, true, &mut rng).cross_entropy_single(4);
            let report = embsr_tensor::verify::validate_training_graph(
                &loss,
                &model.parameters(),
                &[],
            );
            let detached = report.with_rule("detached-param");
            assert!(
                detached.is_empty(),
                "{}: {} detached parameter(s): {:?}",
                model.name(),
                detached.len(),
                detached
            );
        }
    }

    #[test]
    fn variant_parameter_lists_shrink_with_ablations() {
        let full = Embsr::new(EmbsrConfig::full(6, 4, 8)).parameters().len();
        let ns = Embsr::new(EmbsrConfig::ablation_ns(6, 4, 8)).parameters().len();
        let rnn = Embsr::new(EmbsrConfig::rnn_self(6, 4, 8)).parameters().len();
        assert!(ns < full, "no-attention variant must expose fewer tensors");
        assert!(rnn < full, "RNN backbone must not expose the GNN stack");
    }
}
