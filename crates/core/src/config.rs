//! EMBSR configuration and the variant switchboard.

use embsr_nn::FusionMode;

/// Which encoder produces the per-item representations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Backbone {
    /// Star multigraph GNN (the paper's model).
    StarGnn,
    /// Plain GRU over `[item ; op]` embeddings (the `RNN-Self` variant).
    Rnn,
    /// No encoder: raw item embeddings (the `EMBSR-NG` ablation).
    None,
}

/// Full configuration of the EMBSR family.
///
/// The boolean switches correspond one-to-one to the ablations and variants
/// of the paper's Sec. V-C/D/E/F; see the constructors below.
#[derive(Clone, Debug)]
pub struct EmbsrConfig {
    /// Item vocabulary size `|V|`.
    pub num_items: usize,
    /// Operation vocabulary size `|O|` (a virtual "next" operation is added
    /// internally for the star token of eq. 13).
    pub num_ops: usize,
    /// Embedding dimensionality `d` (paper: 100; CPU experiments use less).
    pub dim: usize,
    /// Number of stacked GNN layers.
    pub gnn_layers: usize,
    /// Maximum micro-behavior sequence length seen by the attention
    /// (sessions are truncated upstream; +1 star slot is added internally).
    pub max_len: usize,
    /// Normalized-score weight `w_k` (paper: 12).
    pub w_k: f32,
    /// Dropout rate.
    pub dropout: f32,
    /// Item-representation encoder.
    pub backbone: Backbone,
    /// Encode micro-operation sub-sequences with a GRU and feed them into
    /// the GNN messages (Sec. IV-B-3). Off in SGNN-Self / SGNN-Dyadic.
    pub use_op_gru: bool,
    /// Use the operation-aware self-attention layer at all. Off in EMBSR-NS.
    pub use_attention: bool,
    /// Use the dyadic relation table inside the attention. Off degrades to
    /// standard self-attention (SGNN-Self / SGNN-Seq-Self / SGNN-Abs-Self).
    pub use_dyadic: bool,
    /// Add the absolute operation embedding to the attention inputs
    /// (`x_i = e_v + e_o`, eq. 12). Off in the SGNN-Self variants that carry
    /// no micro-behavior information.
    pub use_abs_op: bool,
    /// How global preference and recent interest are fused (eq. 18).
    pub fusion: FusionMode,
    /// Learn a scalar importance weight per operation and scale every
    /// operation embedding by it — the paper's *future work* ("whether it
    /// would be beneficial to weight, or filter, micro-behavior operations
    /// according to their importance"), implemented as an optional
    /// extension.
    pub use_op_weighting: bool,
    /// Display name (paper table row).
    pub name: String,
    /// Parameter-init / dropout seed.
    pub seed: u64,
}

impl EmbsrConfig {
    fn base(num_items: usize, num_ops: usize, dim: usize, name: &str) -> Self {
        EmbsrConfig {
            num_items,
            num_ops,
            dim,
            gnn_layers: 1,
            max_len: 64,
            w_k: 12.0,
            dropout: 0.1,
            backbone: Backbone::StarGnn,
            use_op_gru: true,
            use_attention: true,
            use_dyadic: true,
            use_abs_op: true,
            fusion: FusionMode::Gated,
            use_op_weighting: false,
            name: name.to_string(),
            seed: 7,
        }
    }

    /// The full EMBSR model.
    pub fn full(num_items: usize, num_ops: usize, dim: usize) -> Self {
        Self::base(num_items, num_ops, dim, "EMBSR")
    }

    /// `EMBSR-NS`: no operation-aware self-attention; only the sequential
    /// pattern is encoded.
    pub fn ablation_ns(num_items: usize, num_ops: usize, dim: usize) -> Self {
        EmbsrConfig {
            use_attention: false,
            ..Self::base(num_items, num_ops, dim, "EMBSR-NS")
        }
    }

    /// `EMBSR-NG`: no GNN layer (including the micro-operation GRU); only
    /// the dyadic relational pattern is encoded.
    pub fn ablation_ng(num_items: usize, num_ops: usize, dim: usize) -> Self {
        EmbsrConfig {
            backbone: Backbone::None,
            use_op_gru: false,
            ..Self::base(num_items, num_ops, dim, "EMBSR-NG")
        }
    }

    /// `EMBSR-NF`: concat + MLP instead of the fusion gate.
    pub fn ablation_nf(num_items: usize, num_ops: usize, dim: usize) -> Self {
        EmbsrConfig {
            fusion: FusionMode::ConcatMlp,
            ..Self::base(num_items, num_ops, dim, "EMBSR-NF")
        }
    }

    /// `SGNN-Self`: star GNN + standard self-attention, no micro-behavior
    /// information at all.
    pub fn sgnn_self(num_items: usize, num_ops: usize, dim: usize) -> Self {
        EmbsrConfig {
            use_op_gru: false,
            use_dyadic: false,
            use_abs_op: false,
            ..Self::base(num_items, num_ops, dim, "SGNN-Self")
        }
    }

    /// `SGNN-Seq-Self`: SGNN-Self plus the GRU-encoded sequential pattern.
    pub fn sgnn_seq_self(num_items: usize, num_ops: usize, dim: usize) -> Self {
        EmbsrConfig {
            use_dyadic: false,
            use_abs_op: false,
            ..Self::base(num_items, num_ops, dim, "SGNN-Seq-Self")
        }
    }

    /// `RNN-Self`: replace the GNN with a GRU over `[item ; op]` embeddings.
    pub fn rnn_self(num_items: usize, num_ops: usize, dim: usize) -> Self {
        EmbsrConfig {
            backbone: Backbone::Rnn,
            use_op_gru: false,
            use_dyadic: false,
            use_abs_op: false,
            ..Self::base(num_items, num_ops, dim, "RNN-Self")
        }
    }

    /// `SGNN-Abs-Self`: standard self-attention with absolute operation
    /// embeddings (no dyadic table, no op GRU).
    pub fn sgnn_abs_self(num_items: usize, num_ops: usize, dim: usize) -> Self {
        EmbsrConfig {
            use_op_gru: false,
            use_dyadic: false,
            ..Self::base(num_items, num_ops, dim, "SGNN-Abs-Self")
        }
    }

    /// `SGNN-Dyadic` (a.k.a. `EMBSR-Dyadic` in the supplement): dyadic
    /// encoding on the star GNN, without the micro-operation GRU.
    pub fn sgnn_dyadic(num_items: usize, num_ops: usize, dim: usize) -> Self {
        EmbsrConfig {
            use_op_gru: false,
            ..Self::base(num_items, num_ops, dim, "SGNN-Dyadic")
        }
    }

    /// EMBSR with learned per-operation importance weights (the paper's
    /// future-work extension).
    pub fn full_op_weighted(num_items: usize, num_ops: usize, dim: usize) -> Self {
        EmbsrConfig {
            use_op_weighting: true,
            ..Self::base(num_items, num_ops, dim, "EMBSR+OpW")
        }
    }

    /// Fixed fusion weight β (Fig. 6 sweep).
    pub fn fixed_beta(num_items: usize, num_ops: usize, dim: usize, beta: f32) -> Self {
        EmbsrConfig {
            fusion: FusionMode::Fixed(beta),
            ..Self::base(num_items, num_ops, dim, &format!("EMBSR(β={beta})"))
        }
    }

    /// The internal operation vocabulary: `|O|` real operations plus the
    /// virtual "next" operation used for the star token (eq. 13 supposes the
    /// star carries the *next* item's operation, which is unknown at
    /// inference, so it gets its own learned id).
    pub fn ops_with_virtual(&self) -> usize {
        self.num_ops + 1
    }

    /// The id of the virtual "next" operation.
    pub fn virtual_next_op(&self) -> usize {
        self.num_ops
    }

    /// Sanity checks.
    pub fn validate(&self) {
        assert!(self.num_items > 0 && self.num_ops > 0 && self.dim > 0);
        assert!(self.gnn_layers >= 1 || self.backbone != Backbone::StarGnn);
        assert!(self.max_len >= 2);
        if let FusionMode::Fixed(b) = self.fusion {
            assert!((0.0..=1.0).contains(&b), "β out of range");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_switchboard_matches_paper_definitions() {
        let f = EmbsrConfig::full(10, 4, 8);
        assert!(f.use_op_gru && f.use_attention && f.use_dyadic);
        assert_eq!(f.backbone, Backbone::StarGnn);

        assert!(!EmbsrConfig::ablation_ns(10, 4, 8).use_attention);
        assert_eq!(EmbsrConfig::ablation_ng(10, 4, 8).backbone, Backbone::None);
        assert_eq!(
            EmbsrConfig::ablation_nf(10, 4, 8).fusion,
            FusionMode::ConcatMlp
        );

        let ss = EmbsrConfig::sgnn_self(10, 4, 8);
        assert!(!ss.use_op_gru && !ss.use_dyadic && !ss.use_abs_op);

        let seq = EmbsrConfig::sgnn_seq_self(10, 4, 8);
        assert!(seq.use_op_gru && !seq.use_dyadic);

        assert_eq!(EmbsrConfig::rnn_self(10, 4, 8).backbone, Backbone::Rnn);

        let abs = EmbsrConfig::sgnn_abs_self(10, 4, 8);
        assert!(abs.use_abs_op && !abs.use_dyadic && !abs.use_op_gru);

        let dy = EmbsrConfig::sgnn_dyadic(10, 4, 8);
        assert!(dy.use_dyadic && !dy.use_op_gru);
    }

    #[test]
    fn virtual_op_extends_vocab() {
        let c = EmbsrConfig::full(10, 6, 8);
        assert_eq!(c.ops_with_virtual(), 7);
        assert_eq!(c.virtual_next_op(), 6);
    }

    #[test]
    #[should_panic(expected = "β out of range")]
    fn invalid_beta_rejected() {
        EmbsrConfig::fixed_beta(10, 4, 8, 1.5).validate();
    }

    #[test]
    fn all_variants_validate() {
        for c in [
            EmbsrConfig::full(5, 3, 4),
            EmbsrConfig::ablation_ns(5, 3, 4),
            EmbsrConfig::ablation_ng(5, 3, 4),
            EmbsrConfig::ablation_nf(5, 3, 4),
            EmbsrConfig::sgnn_self(5, 3, 4),
            EmbsrConfig::sgnn_seq_self(5, 3, 4),
            EmbsrConfig::rnn_self(5, 3, 4),
            EmbsrConfig::sgnn_abs_self(5, 3, 4),
            EmbsrConfig::sgnn_dyadic(5, 3, 4),
            EmbsrConfig::fixed_beta(5, 3, 4, 0.4),
        ] {
            c.validate();
        }
    }
}
