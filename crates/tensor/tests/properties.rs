//! Property-based tests over the tensor algebra and autograd engine.

use embsr_tensor::{Rng, Tensor};
use proptest::prelude::*;

/// Strategy: a small matrix with bounded values.
fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-3.0f32..3.0, rows * cols)
}

fn close(a: &[f32], b: &[f32], tol: f32) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() <= tol)
}

proptest! {
    /// (A·B)·C == A·(B·C) within float tolerance.
    #[test]
    fn matmul_is_associative(a in matrix(3, 4), b in matrix(4, 2), c in matrix(2, 5)) {
        let a = Tensor::from_vec(a, &[3, 4]);
        let b = Tensor::from_vec(b, &[4, 2]);
        let c = Tensor::from_vec(c, &[2, 5]);
        let left = a.matmul(&b).matmul(&c).to_vec();
        let right = a.matmul(&b.matmul(&c)).to_vec();
        prop_assert!(close(&left, &right, 1e-3), "{left:?} vs {right:?}");
    }

    /// (A·B)ᵀ == Bᵀ·Aᵀ.
    #[test]
    fn matmul_transpose_identity(a in matrix(3, 4), b in matrix(4, 2)) {
        let a = Tensor::from_vec(a, &[3, 4]);
        let b = Tensor::from_vec(b, &[4, 2]);
        let left = a.matmul(&b).transpose().to_vec();
        let right = b.transpose().matmul(&a.transpose()).to_vec();
        prop_assert!(close(&left, &right, 1e-4));
    }

    /// Softmax rows sum to 1 and are shift-invariant.
    #[test]
    fn softmax_is_normalized_and_shift_invariant(x in matrix(4, 6), shift in -50.0f32..50.0) {
        let t = Tensor::from_vec(x, &[4, 6]);
        let s1 = t.softmax_rows().to_vec();
        for r in 0..4 {
            let sum: f32 = s1[r * 6..(r + 1) * 6].iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-5);
        }
        let s2 = t.add_scalar(shift).softmax_rows().to_vec();
        prop_assert!(close(&s1, &s2, 1e-4));
    }

    /// L2-normalized rows have unit norm (for non-degenerate inputs) and the
    /// op is idempotent.
    #[test]
    fn l2_normalize_is_idempotent(x in matrix(3, 5)) {
        let t = Tensor::from_vec(x, &[3, 5]);
        // skip rows that are numerically zero
        let norms: Vec<f32> = (0..3)
            .map(|r| (0..5).map(|c| t.at(r, c).powi(2)).sum::<f32>().sqrt())
            .collect();
        prop_assume!(norms.iter().all(|&n| n > 1e-3));
        let once = t.l2_normalize_rows(1e-12);
        let twice = once.l2_normalize_rows(1e-12);
        prop_assert!(close(&once.to_vec(), &twice.to_vec(), 1e-5));
    }

    /// Autograd linearity: grad of (αf + βg) = α grad f + β grad g.
    #[test]
    fn gradients_are_linear(x in matrix(2, 3), alpha in -2.0f32..2.0, beta in -2.0f32..2.0) {
        let f = |t: &Tensor| t.square().sum();
        let g = |t: &Tensor| t.mul_scalar(3.0).sum();

        let t1 = Tensor::from_vec(x.clone(), &[2, 3]).requires_grad();
        f(&t1).mul_scalar(alpha).add(&g(&t1).mul_scalar(beta)).backward();
        let combined = t1.grad().unwrap();

        let t2 = Tensor::from_vec(x.clone(), &[2, 3]).requires_grad();
        f(&t2).backward();
        let gf = t2.grad().unwrap();
        let t3 = Tensor::from_vec(x, &[2, 3]).requires_grad();
        g(&t3).backward();
        let gg = t3.grad().unwrap();

        let expect: Vec<f32> = gf.iter().zip(&gg).map(|(a, b)| alpha * a + beta * b).collect();
        prop_assert!(close(&combined, &expect, 1e-3));
    }

    /// gather_rows then sum equals selecting and summing by hand.
    #[test]
    fn gather_rows_matches_manual(
        x in matrix(5, 3),
        idx in proptest::collection::vec(0usize..5, 1..10),
    ) {
        let t = Tensor::from_vec(x.clone(), &[5, 3]);
        let gathered = t.gather_rows(&idx).to_vec();
        let manual: Vec<f32> = idx
            .iter()
            .flat_map(|&i| x[i * 3..(i + 1) * 3].to_vec())
            .collect();
        prop_assert_eq!(gathered, manual);
    }

    /// Cross-entropy is minimized at the target and its gradient sums to 0.
    #[test]
    fn cross_entropy_gradient_sums_to_zero(x in matrix(1, 6), target in 0usize..6) {
        let t = Tensor::from_vec(x, &[1, 6]).requires_grad();
        t.cross_entropy(&[target]).backward();
        let g = t.grad().unwrap();
        let sum: f32 = g.iter().sum();
        prop_assert!(sum.abs() < 1e-5, "grad sum {sum}");
        prop_assert!(g[target] <= 0.0, "target grad must be non-positive");
    }

    /// Adam with lr 0 never moves parameters.
    #[test]
    fn zero_lr_is_a_fixed_point(x in matrix(2, 2)) {
        use embsr_tensor::{Adam, AdamConfig, Optimizer};
        let p = Tensor::from_vec(x.clone(), &[2, 2]).requires_grad();
        let mut opt = Adam::new(vec![p.clone()], AdamConfig { lr: 0.0, ..Default::default() });
        p.square().sum().backward();
        opt.step();
        prop_assert_eq!(p.to_vec(), x);
    }
}

#[test]
fn rng_streams_are_reproducible_across_forks() {
    let mut a = Rng::seed_from_u64(5);
    let mut b = Rng::seed_from_u64(5);
    let fa: Vec<u32> = {
        let mut c = a.fork();
        (0..10).map(|_| c.below(1000) as u32).collect()
    };
    let fb: Vec<u32> = {
        let mut c = b.fork();
        (0..10).map(|_| c.below(1000) as u32).collect()
    };
    assert_eq!(fa, fb);
}
