//! Randomized invariant tests over the tensor algebra and autograd engine.
//!
//! Each test draws many cases from a seeded [`Rng`], so failures are
//! reproducible bit-for-bit (re-run with the same seed and iteration count).

use embsr_tensor::{Rng, Tensor};

const CASES: usize = 64;

/// A `rows × cols` matrix with entries uniform in `[-3, 3)`.
fn matrix(r: &mut Rng, rows: usize, cols: usize) -> Vec<f32> {
    (0..rows * cols).map(|_| r.uniform_range(-3.0, 3.0)).collect()
}

fn close(a: &[f32], b: &[f32], tol: f32) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() <= tol)
}

/// (A·B)·C == A·(B·C) within float tolerance.
#[test]
fn matmul_is_associative() {
    let mut r = Rng::seed_from_u64(101);
    for _ in 0..CASES {
        let a = Tensor::from_vec(matrix(&mut r, 3, 4), &[3, 4]);
        let b = Tensor::from_vec(matrix(&mut r, 4, 2), &[4, 2]);
        let c = Tensor::from_vec(matrix(&mut r, 2, 5), &[2, 5]);
        let left = a.matmul(&b).matmul(&c).to_vec();
        let right = a.matmul(&b.matmul(&c)).to_vec();
        assert!(close(&left, &right, 1e-3), "{left:?} vs {right:?}");
    }
}

/// (A·B)ᵀ == Bᵀ·Aᵀ.
#[test]
fn matmul_transpose_identity() {
    let mut r = Rng::seed_from_u64(102);
    for _ in 0..CASES {
        let a = Tensor::from_vec(matrix(&mut r, 3, 4), &[3, 4]);
        let b = Tensor::from_vec(matrix(&mut r, 4, 2), &[4, 2]);
        let left = a.matmul(&b).transpose().to_vec();
        let right = b.transpose().matmul(&a.transpose()).to_vec();
        assert!(close(&left, &right, 1e-4));
    }
}

/// Softmax rows sum to 1 and are shift-invariant.
#[test]
fn softmax_is_normalized_and_shift_invariant() {
    let mut r = Rng::seed_from_u64(103);
    for _ in 0..CASES {
        let t = Tensor::from_vec(matrix(&mut r, 4, 6), &[4, 6]);
        let shift = r.uniform_range(-50.0, 50.0);
        let s1 = t.softmax_rows().to_vec();
        for row in 0..4 {
            let sum: f32 = s1[row * 6..(row + 1) * 6].iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        let s2 = t.add_scalar(shift).softmax_rows().to_vec();
        assert!(close(&s1, &s2, 1e-4));
    }
}

/// L2-normalized rows have unit norm (for non-degenerate inputs) and the
/// op is idempotent.
#[test]
fn l2_normalize_is_idempotent() {
    let mut r = Rng::seed_from_u64(104);
    for _ in 0..CASES {
        let t = Tensor::from_vec(matrix(&mut r, 3, 5), &[3, 5]);
        // skip draws with a numerically-zero row
        let norms: Vec<f32> = (0..3)
            .map(|row| (0..5).map(|c| t.at(row, c).powi(2)).sum::<f32>().sqrt())
            .collect();
        if !norms.iter().all(|&n| n > 1e-3) {
            continue;
        }
        let once = t.l2_normalize_rows(1e-12);
        let twice = once.l2_normalize_rows(1e-12);
        assert!(close(&once.to_vec(), &twice.to_vec(), 1e-5));
    }
}

/// Autograd linearity: grad of (αf + βg) = α grad f + β grad g.
#[test]
fn gradients_are_linear() {
    let mut r = Rng::seed_from_u64(105);
    for _ in 0..CASES {
        let x = matrix(&mut r, 2, 3);
        let alpha = r.uniform_range(-2.0, 2.0);
        let beta = r.uniform_range(-2.0, 2.0);
        let f = |t: &Tensor| t.square().sum();
        let g = |t: &Tensor| t.mul_scalar(3.0).sum();

        let t1 = Tensor::from_vec(x.clone(), &[2, 3]).requires_grad();
        f(&t1).mul_scalar(alpha).add(&g(&t1).mul_scalar(beta)).backward();
        let combined = t1.grad().unwrap();

        let t2 = Tensor::from_vec(x.clone(), &[2, 3]).requires_grad();
        f(&t2).backward();
        let gf = t2.grad().unwrap();
        let t3 = Tensor::from_vec(x, &[2, 3]).requires_grad();
        g(&t3).backward();
        let gg = t3.grad().unwrap();

        let expect: Vec<f32> = gf.iter().zip(&gg).map(|(a, b)| alpha * a + beta * b).collect();
        assert!(close(&combined, &expect, 1e-3));
    }
}

/// gather_rows then sum equals selecting and summing by hand.
#[test]
fn gather_rows_matches_manual() {
    let mut r = Rng::seed_from_u64(106);
    for _ in 0..CASES {
        let x = matrix(&mut r, 5, 3);
        let idx: Vec<usize> = (0..1 + r.below(9)).map(|_| r.below(5)).collect();
        let t = Tensor::from_vec(x.clone(), &[5, 3]);
        let gathered = t.gather_rows(&idx).to_vec();
        let manual: Vec<f32> = idx
            .iter()
            .flat_map(|&i| x[i * 3..(i + 1) * 3].to_vec())
            .collect();
        assert_eq!(gathered, manual);
    }
}

/// Cross-entropy is minimized at the target and its gradient sums to 0.
#[test]
fn cross_entropy_gradient_sums_to_zero() {
    let mut r = Rng::seed_from_u64(107);
    for _ in 0..CASES {
        let target = r.below(6);
        let t = Tensor::from_vec(matrix(&mut r, 1, 6), &[1, 6]).requires_grad();
        t.cross_entropy(&[target]).backward();
        let g = t.grad().unwrap();
        let sum: f32 = g.iter().sum();
        assert!(sum.abs() < 1e-5, "grad sum {sum}");
        assert!(g[target] <= 0.0, "target grad must be non-positive");
    }
}

/// Adam with lr 0 never moves parameters.
#[test]
fn zero_lr_is_a_fixed_point() {
    use embsr_tensor::{Adam, AdamConfig, Optimizer};
    let mut r = Rng::seed_from_u64(108);
    for _ in 0..CASES {
        let x = matrix(&mut r, 2, 2);
        let p = Tensor::from_vec(x.clone(), &[2, 2]).requires_grad();
        let mut opt = Adam::new(vec![p.clone()], AdamConfig { lr: 0.0, ..Default::default() });
        p.square().sum().backward();
        opt.step();
        assert_eq!(p.to_vec(), x);
    }
}

#[test]
fn rng_streams_are_reproducible_across_forks() {
    let mut a = Rng::seed_from_u64(5);
    let mut b = Rng::seed_from_u64(5);
    let fa: Vec<u32> = {
        let mut c = a.fork();
        (0..10).map(|_| c.below(1000) as u32).collect()
    };
    let fb: Vec<u32> = {
        let mut c = b.fork();
        (0..10).map(|_| c.below(1000) as u32).collect()
    };
    assert_eq!(fa, fb);
}

/// Gradients computed shard-by-shard and tree-reduced equal the whole-batch
/// gradient within float tolerance: splitting a mini-batch across workers
/// (the data-parallel trainer's decomposition) only reorders additions.
#[test]
fn shard_summed_gradients_match_whole_batch() {
    use embsr_tensor::{export_grads, tree_reduce};
    let mut r = Rng::seed_from_u64(109);
    let dim = 6;
    for case in 0..CASES {
        let n = 2 + r.below(14);
        let w = Tensor::from_vec(matrix(&mut r, 1, dim), &[dim]).requires_grad();
        let xs: Vec<Tensor> =
            (0..n).map(|_| Tensor::from_vec(matrix(&mut r, 1, dim), &[dim])).collect();
        let ys: Vec<f32> = (0..n).map(|_| r.uniform_range(-2.0, 2.0)).collect();
        let example_loss = |i: usize| {
            // (wᵀx_i − y_i)²: touches every weight, so shards must agree everywhere
            w.mul(&xs[i]).sum().add_scalar(-ys[i]).square()
        };
        let params = [w.clone()];

        // whole-batch gradient: one graph over all examples
        w.zero_grad();
        (0..n)
            .map(example_loss)
            .reduce(|a, b| a.add(&b))
            .expect("n >= 2")
            .backward();
        let whole = export_grads(&params);

        // random contiguous split into 1..=n shards, each backward separately
        let shards = 1 + r.below(n);
        let mut bounds: Vec<usize> = (0..shards - 1).map(|_| r.below(n + 1)).collect();
        bounds.push(0);
        bounds.push(n);
        bounds.sort_unstable();
        let mut shard_grads = Vec::new();
        for pair in bounds.windows(2) {
            let (lo, hi) = (pair[0], pair[1]);
            w.zero_grad();
            match (lo..hi).map(example_loss).reduce(|a, b| a.add(&b)) {
                Some(loss) => {
                    loss.backward();
                    shard_grads.push(export_grads(&params));
                }
                None => shard_grads.push(vec![0.0; dim]), // empty shard
            }
        }
        let reduced = tree_reduce(shard_grads);
        // 1e-6 relative tolerance: only the addition order differs
        for (i, (a, b)) in whole.iter().zip(&reduced).enumerate() {
            assert!(
                (a - b).abs() <= 1e-6 * (1.0 + a.abs()) * n as f32,
                "case {case}, element {i}: whole {a} vs sharded {b}"
            );
        }
    }
}
