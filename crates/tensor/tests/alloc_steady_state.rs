//! Steady-state allocation discipline: after a warmup batch has populated
//! the thread-local buffer pool, further identical training iterations must
//! perform **zero** fresh kernel-buffer allocations — every forward
//! activation, backward gradient, and optimizer access is served from
//! recycled buffers.

use embsr_tensor::{
    clip_grad_norm, pool_stats, reset_pool_stats, Adam, AdamConfig, Optimizer, Rng, Tensor,
};

fn param(rng: &mut Rng, dims: &[usize]) -> Tensor {
    let n: usize = dims.iter().product();
    let data: Vec<f32> = (0..n).map(|_| rng.uniform_range(-0.3, 0.3)).collect();
    Tensor::from_vec(data, dims).requires_grad()
}

#[test]
fn steady_state_training_performs_zero_fresh_kernel_allocations() {
    let mut rng = Rng::seed_from_u64(7);
    let vocab = 40;
    let d = 16;
    let batch = 8;

    let emb = param(&mut rng, &[vocab, d]);
    let w1 = param(&mut rng, &[d, d]);
    let w2 = param(&mut rng, &[d, vocab]);
    let params = [emb.clone(), w1.clone(), w2.clone()];
    let mut opt = Adam::new(params.to_vec(), AdamConfig::default());

    let idx: Vec<usize> = (0..batch).map(|i| (i * 5) % vocab).collect();
    let targets: Vec<usize> = (0..batch).map(|i| (i * 7) % vocab).collect();

    // A representative op mix: embedding gather, GEMMs, normalization,
    // batched attention-style products, loss, clipping, Adam.
    let run_iteration = |opt: &mut Adam| {
        opt.zero_grad();
        let x = emb.gather_rows(&idx); // [8, d]
        let h = x.matmul(&w1).layer_norm_rows(1e-5).sigmoid(); // [8, d]
        let q = h.reshape(&[2, 4, d]);
        let scores = q.bmm_nt(&q).reshape(&[batch, 4]); // [8, 4]
        let mixed = scores
            .softmax_rows()
            .reshape(&[2, 4, 4])
            .bmm(&q)
            .reshape(&[batch, d]); // [8, d]
        let logits = mixed.add(&h).matmul(&w2); // [8, vocab]
        let loss = logits.cross_entropy(&targets);
        loss.backward();
        clip_grad_norm(&params, 5.0);
        opt.step();
        loss.item()
    };

    // Warmup: populates the pool (and Adam's moment buffers) with the
    // iteration's full buffer multiset.
    for _ in 0..3 {
        let _ = run_iteration(&mut opt);
    }

    reset_pool_stats();
    let mut losses = Vec::new();
    for _ in 0..6 {
        losses.push(run_iteration(&mut opt));
    }
    let stats = pool_stats();

    assert_eq!(
        stats.misses, 0,
        "steady-state batches must be served entirely from the pool: {stats:?}"
    );
    assert_eq!(
        stats.alloc_count, 0,
        "steady-state batches must not allocate fresh kernel buffers: {stats:?}"
    );
    assert!(
        stats.hits > 0 && stats.bytes_reused > 0,
        "the pool must actually be exercised: {stats:?}"
    );
    // Sanity: training is really happening (loss strictly decreases).
    assert!(
        losses.last() < losses.first(),
        "loss should decrease over iterations: {losses:?}"
    );
}
