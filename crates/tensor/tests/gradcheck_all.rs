//! Universal gradcheck: every differentiable op in `embsr-tensor` is
//! mechanically verified against central finite differences via the
//! registry in `embsr_tensor::verify`, over multiple random seeds.
//!
//! The workspace lint (`cargo run -p xtask -- lint`) enforces that every
//! file under `crates/tensor/src/ops/` keeps at least one registry entry,
//! so an op added without a gradcheck fails CI.

use embsr_tensor::verify::{gradcheck_specs, run_gradcheck};

const SEEDS: &[u64] = &[11, 42, 1337];

#[test]
fn every_registered_op_passes_gradcheck() {
    let specs = gradcheck_specs();
    assert!(specs.len() >= 40, "registry unexpectedly small: {}", specs.len());
    let mut failures = Vec::new();
    for spec in &specs {
        match run_gradcheck(spec, SEEDS) {
            Ok(worst) => {
                assert!(
                    worst <= spec.tol,
                    "{}: worst error {worst:.2e} above tolerance {:.2e}",
                    spec.name,
                    spec.tol
                );
            }
            Err(e) => failures.push(e),
        }
    }
    assert!(
        failures.is_empty(),
        "{} op(s) failed gradcheck:\n{}",
        failures.len(),
        failures.join("\n")
    );
}

#[test]
fn registry_names_are_unique_and_well_formed() {
    let specs = gradcheck_specs();
    let mut seen = std::collections::HashSet::new();
    for s in &specs {
        assert!(seen.insert(s.name), "duplicate gradcheck name {}", s.name);
        let (file, case) = s.name.split_once("::").unwrap_or(("", ""));
        assert_eq!(file, s.file, "{}: name prefix must match file stem", s.name);
        assert!(!case.is_empty(), "{}: empty case name", s.name);
        assert!(s.eps > 0.0 && s.tol > 0.0 && s.lo < s.hi, "{}: bad spec", s.name);
    }
}
