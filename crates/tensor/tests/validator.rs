//! Integration coverage for the autograd graph validator through the public
//! API only (the in-crate unit tests additionally cover hand-assembled
//! corrupt tape nodes that cannot be built from outside).

use embsr_tensor::verify::{validate_graph, validate_training_graph, Severity};
use embsr_tensor::Tensor;

#[test]
fn detached_parameter_is_reported_once() {
    let w_used = Tensor::from_vec(vec![0.1, 0.2, 0.3, 0.4], &[2, 2]).requires_grad();
    let w_unused = Tensor::from_vec(vec![1.0; 4], &[2, 2]).requires_grad();
    let x = Tensor::from_vec(vec![1.0, -1.0], &[1, 2]);
    let loss = x.matmul(&w_used).cross_entropy(&[1]);

    let report = validate_training_graph(
        &loss,
        &[w_used.clone(), w_unused.clone()],
        &[],
    );
    let hits = report.with_rule("detached-param");
    assert_eq!(hits.len(), 1, "{:?}", report.diagnostics);
    assert_eq!(hits[0].node, w_unused.id());
    assert_eq!(hits[0].severity, Severity::Error);
    assert!(!report.is_clean());
    // Display form names the rule so log lines are greppable.
    assert!(hits[0].to_string().contains("detached-param"));
}

#[test]
fn dead_gradient_subgraph_is_reported_once() {
    let x = Tensor::from_vec(vec![0.3, -0.6], &[2]).requires_grad();
    let dead_branch = x.tanh().sum(); // computed, then dropped from the loss
    let loss = x.square().sum();

    let report = validate_training_graph(&loss, std::slice::from_ref(&x), std::slice::from_ref(&dead_branch));
    let hits = report.with_rule("dead-gradient");
    assert_eq!(hits.len(), 1, "{:?}", report.diagnostics);
    assert_eq!(hits[0].severity, Severity::Warning);
    assert!(report.is_clean(), "dead gradients warn but do not fail");
}

#[test]
fn healthy_training_graph_is_clean() {
    let emb = Tensor::from_vec((0..12).map(|i| i as f32 * 0.1).collect(), &[4, 3])
        .requires_grad();
    let w = Tensor::from_vec(vec![0.2; 9], &[3, 3]).requires_grad();
    let loss = emb
        .gather_rows(&[0, 2, 3])
        .matmul(&w)
        .layer_norm_rows(1e-5)
        .cross_entropy(&[1, 0, 2]);
    let report = validate_training_graph(&loss, &[emb, w], &[]);
    assert!(report.is_clean(), "{:?}", report.diagnostics);
    assert_eq!(report.error_count(), 0);
    assert!(report.nodes_visited >= 5);
}

#[test]
fn hazard_warnings_surface_through_plain_validate() {
    let x = Tensor::from_vec(vec![0.5, 1.5], &[2]).requires_grad();
    let loss = x.square().log().sum(); // log of an unguarded square
    let report = validate_graph(&loss);
    assert_eq!(report.with_rule("hazard-log").len(), 1);
    assert_eq!(report.warning_count(), 1);
    assert_eq!(report.error_count(), 0);
}
