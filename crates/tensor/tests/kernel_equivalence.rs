//! Property tests for the packed GEMM kernels: across shapes straddling the
//! register-tile boundaries, all three transpose variants must be
//! **bitwise** equal to the straightforward scalar reference — the
//! determinism contract everything else (golden trajectories, thread
//! invariance) rests on.

use embsr_tensor::kernels::{
    gemm_ab, gemm_abt, gemm_atb, reference_gemm_ab, reference_gemm_abt, reference_gemm_atb, MR,
    NR,
};
use embsr_tensor::Rng;

const SEEDS: [u64; 3] = [11, 42, 1337];

/// Dimension values straddling the microkernel tile edges in both the
/// MR (rows) and NR (columns) direction.
fn probe_sizes() -> Vec<usize> {
    let mut s = vec![
        1,
        MR - 1,
        MR,
        MR + 1,
        2 * MR + 3,
        NR - 1,
        NR,
        NR + 1,
        2 * NR + 3,
    ];
    s.sort_unstable();
    s.dedup();
    s
}

fn sample(rng: &mut Rng, n: usize) -> Vec<f32> {
    (0..n).map(|_| rng.uniform_range(-2.0, 2.0)).collect()
}

fn assert_bitwise(packed: &[f32], reference: &[f32], ctx: &str) {
    assert_eq!(packed.len(), reference.len(), "{ctx}: length mismatch");
    for (i, (p, r)) in packed.iter().zip(reference).enumerate() {
        assert_eq!(
            p.to_bits(),
            r.to_bits(),
            "{ctx}: element {i} differs: packed {p} vs reference {r}"
        );
    }
}

#[test]
fn gemm_ab_bitwise_equals_reference_across_tile_boundaries() {
    let sizes = probe_sizes();
    for &seed in &SEEDS {
        let mut rng = Rng::seed_from_u64(seed);
        for &m in &sizes {
            for &k in &sizes {
                for &n in &sizes {
                    let a = sample(&mut rng, m * k);
                    let b = sample(&mut rng, k * n);
                    // Non-zero initial C also exercises the += contract.
                    let init = sample(&mut rng, m * n);
                    let mut packed = init.clone();
                    let mut reference = init;
                    gemm_ab(&a, &b, &mut packed, m, k, n);
                    reference_gemm_ab(&a, &b, &mut reference, m, k, n);
                    assert_bitwise(&packed, &reference, &format!("ab seed={seed} {m}x{k}x{n}"));
                }
            }
        }
    }
}

#[test]
fn gemm_atb_bitwise_equals_reference_across_tile_boundaries() {
    let sizes = probe_sizes();
    for &seed in &SEEDS {
        let mut rng = Rng::seed_from_u64(seed);
        for &m in &sizes {
            for &k in &sizes {
                for &n in &sizes {
                    let a = sample(&mut rng, k * m); // stored [k, m]
                    let b = sample(&mut rng, k * n);
                    let init = sample(&mut rng, m * n);
                    let mut packed = init.clone();
                    let mut reference = init;
                    gemm_atb(&a, &b, &mut packed, k, m, n);
                    reference_gemm_atb(&a, &b, &mut reference, k, m, n);
                    assert_bitwise(
                        &packed,
                        &reference,
                        &format!("atb seed={seed} {k}x{m}x{n}"),
                    );
                }
            }
        }
    }
}

#[test]
fn gemm_abt_bitwise_equals_reference_across_tile_boundaries() {
    let sizes = probe_sizes();
    for &seed in &SEEDS {
        let mut rng = Rng::seed_from_u64(seed);
        for &m in &sizes {
            for &n in &sizes {
                for &kb in &sizes {
                    let a = sample(&mut rng, m * n);
                    let b = sample(&mut rng, kb * n); // stored [kb, n]
                    let init = sample(&mut rng, m * kb);
                    let mut packed = init.clone();
                    let mut reference = init;
                    gemm_abt(&a, &b, &mut packed, m, n, kb);
                    reference_gemm_abt(&a, &b, &mut reference, m, n, kb);
                    assert_bitwise(
                        &packed,
                        &reference,
                        &format!("abt seed={seed} {m}x{n}x{kb}"),
                    );
                }
            }
        }
    }
}

#[test]
fn packed_kernel_handles_zero_rows_in_reduction() {
    // Degenerate reduction length: C must stay exactly as initialized.
    let a: Vec<f32> = Vec::new();
    let b: Vec<f32> = Vec::new();
    let mut out = vec![3.5f32; 4];
    gemm_ab(&a, &b, &mut out, 2, 0, 2);
    assert_eq!(out, vec![3.5; 4]);
}
