//! Reverse-mode sweep: topological ordering and gradient propagation.

use std::collections::HashSet;

use crate::tensor::Tensor;

impl Tensor {
    /// Runs reverse-mode automatic differentiation from this (scalar) tensor.
    ///
    /// Seeds the output gradient with `1.0` and propagates gradients to every
    /// reachable node with `requires_grad`. Gradients *accumulate*: call
    /// [`crate::Optimizer::zero_grad`] (or [`Tensor::zero_grad`]) between
    /// steps.
    ///
    /// # Panics
    /// Panics when called on a non-scalar tensor.
    pub fn backward(&self) {
        assert_eq!(
            self.len(),
            1,
            "backward() must start from a scalar loss; got shape {}",
            self.shape()
        );
        self.backward_with_grad(&[1.0]);
    }

    /// Like [`Tensor::backward`] but with an explicit seed gradient, useful
    /// when a sub-graph output feeds an externally computed gradient.
    pub fn backward_with_grad(&self, seed: &[f32]) {
        assert_eq!(seed.len(), self.len(), "seed gradient length mismatch");
        if !self.inner.requires_grad {
            return;
        }
        let order = topo_order(self);
        self.accumulate_grad(seed);
        // Reverse topological order: every node sees its full gradient before
        // propagating to parents. Op-node gradients are *taken* (not cloned):
        // once a node has propagated, its gradient is dead weight, so the
        // buffer goes straight back to the pool. This also clears the
        // intermediate grads so repeated forward passes over shared leaves
        // don't see stale values; leaves (no backward fn) keep theirs.
        for node in order.iter().rev() {
            if node.inner.backward.is_none() {
                continue;
            }
            let Some(grad) = node.inner.grad.borrow_mut().take() else {
                continue;
            };
            if let Some(backward) = &node.inner.backward {
                backward(&grad);
            }
            crate::pool::give(grad);
        }
    }
}

/// Iterative DFS post-order over the graph rooted at `root`, restricted to
/// nodes that require gradients.
fn topo_order(root: &Tensor) -> Vec<Tensor> {
    let mut order = Vec::new();
    let mut visited: HashSet<u64> = HashSet::new();
    // Stack of (node, next-parent-index) frames for an explicit DFS.
    let mut stack: Vec<(Tensor, usize)> = vec![(root.clone(), 0)];
    visited.insert(root.inner.id);
    while let Some((node, idx)) = stack.pop() {
        if idx < node.inner.parents.len() {
            let parent = node.inner.parents[idx].clone();
            stack.push((node, idx + 1));
            if parent.inner.requires_grad && visited.insert(parent.inner.id) {
                stack.push((parent, 0));
            }
        } else {
            order.push(node);
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use crate::testing::assert_close;
    use crate::Tensor;

    #[test]
    fn chain_rule_through_two_ops() {
        // loss = sum((a + a) * a) = sum(2 a^2); d/da = 4a
        let a = Tensor::from_vec(vec![1.0, -2.0, 3.0], &[3]).requires_grad();
        let loss = a.add(&a).mul(&a).sum();
        loss.backward();
        assert_close(&a.grad().unwrap(), &[4.0, -8.0, 12.0], 1e-5);
    }

    #[test]
    fn diamond_graph_accumulates_both_paths() {
        // b = 2a ; c = 3a ; loss = sum(b + c) => d/da = 5
        let a = Tensor::from_vec(vec![1.0, 1.0], &[2]).requires_grad();
        let b = a.mul_scalar(2.0);
        let c = a.mul_scalar(3.0);
        let loss = b.add(&c).sum();
        loss.backward();
        assert_close(&a.grad().unwrap(), &[5.0, 5.0], 1e-6);
    }

    #[test]
    fn gradients_accumulate_across_backward_calls() {
        let a = Tensor::from_vec(vec![2.0], &[1]).requires_grad();
        let loss1 = a.mul_scalar(1.0).sum();
        loss1.backward();
        let loss2 = a.mul_scalar(1.0).sum();
        loss2.backward();
        assert_close(&a.grad().unwrap(), &[2.0], 1e-6);
        a.zero_grad();
        assert!(a.grad().is_none());
    }

    #[test]
    fn backward_on_constant_graph_is_a_noop() {
        let a = Tensor::ones(&[1]);
        let loss = a.mul_scalar(2.0).sum();
        loss.backward(); // must not panic
        assert!(a.grad().is_none());
    }

    #[test]
    #[should_panic(expected = "scalar")]
    fn backward_rejects_non_scalar() {
        let a = Tensor::ones(&[2]).requires_grad();
        a.add(&a).backward();
    }

    #[test]
    fn deep_chain_does_not_overflow_stack() {
        let a = Tensor::from_vec(vec![1.0], &[1]).requires_grad();
        let mut x = a.clone();
        for _ in 0..20_000 {
            x = x.add_scalar(0.0);
        }
        x.sum().backward();
        assert_close(&a.grad().unwrap(), &[1.0], 1e-6);
    }
}
