//! embsr-check layer 1: pre-backward autograd graph validation and a
//! universal finite-difference gradient checker.
//!
//! The whole reproduction rests on a hand-written autograd engine; a silent
//! shape or gradient bug corrupts every downstream table. This module makes
//! two classes of bugs loud *before* they corrupt a training run:
//!
//! * [`validate_graph`] / [`validate_training_graph`] walk the recorded tape
//!   from a loss root, re-infer every node's output shape symbolically from
//!   its parents' shapes and op name, and report structured [`Diagnostic`]s
//!   for rank/dim mismatches, optimizer parameters unreachable from the loss
//!   (detached subgraphs), tracked intermediates whose gradient is never
//!   consumed, and numerically hazardous patterns (`log`/`div` on unguarded
//!   inputs, raw `exp` in a differentiable graph).
//! * [`gradcheck`] plus the [`gradcheck_specs`] registry mechanically verify
//!   **every** op in `crates/tensor/src/ops/` against central finite
//!   differences at per-op tolerances over multiple seeds. The workspace
//!   lint (`cargo run -p xtask -- lint`) fails when an op file has no
//!   registry entry.

use std::collections::HashSet;
use std::fmt;

use crate::rng::Rng;
use crate::shape::Shape;
use crate::tensor::Tensor;

// ---------------------------------------------------------------------------
// Diagnostics
// ---------------------------------------------------------------------------

/// How severe a validator finding is.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Severity {
    /// The graph is structurally wrong: backward would compute garbage (or
    /// panic). Training must not proceed.
    Error,
    /// The graph is suspicious (numerical hazard, dead subgraph) but
    /// backward is well-defined.
    Warning,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Error => write!(f, "error"),
            Severity::Warning => write!(f, "warning"),
        }
    }
}

/// A single structured finding from the graph validator.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Stable rule identifier (`shape-mismatch`, `detached-param`,
    /// `dead-gradient`, `hazard-log`, `hazard-exp`, `hazard-div`).
    pub rule: &'static str,
    /// Finding severity.
    pub severity: Severity,
    /// Id of the offending graph node (see [`Tensor::id`]).
    pub node: u64,
    /// Op name of the offending node.
    pub op: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} at node #{} ({}): {}",
            self.severity, self.rule, self.node, self.op, self.message
        )
    }
}

/// The outcome of a validation pass.
#[derive(Clone, Debug, Default)]
pub struct GraphReport {
    /// All findings, errors first.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of graph nodes visited.
    pub nodes_visited: usize,
}

impl GraphReport {
    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.diagnostics.len() - self.error_count()
    }

    /// True when the pass found no errors (warnings are allowed).
    pub fn is_clean(&self) -> bool {
        self.error_count() == 0
    }

    /// Findings filtered to one rule, for tests and targeted reporting.
    pub fn with_rule(&self, rule: &str) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.rule == rule).collect()
    }
}

// ---------------------------------------------------------------------------
// Graph traversal
// ---------------------------------------------------------------------------

/// Every node reachable from `root` through recorded parents (iterative, so
/// deep chains cannot overflow the stack).
fn reachable(root: &Tensor) -> Vec<Tensor> {
    let mut out = Vec::new();
    let mut seen: HashSet<u64> = HashSet::new();
    let mut stack = vec![root.clone()];
    seen.insert(root.id());
    while let Some(node) = stack.pop() {
        for p in node.parents() {
            if seen.insert(p.id()) {
                stack.push(p);
            }
        }
        out.push(node);
    }
    out
}

// ---------------------------------------------------------------------------
// Symbolic shape inference
// ---------------------------------------------------------------------------

/// Re-infers the output shape of `op` from its parents' shapes.
///
/// Returns `Ok(Some(shape))` when the output shape is fully determined,
/// `Ok(None)` when the op's output shape depends on data the tape does not
/// record (gather indices, reshape targets) — in which case only partial
/// consistency checks apply — and `Err` when the parent shapes themselves
/// are structurally incompatible with the op.
fn infer_shape(op: &str, parents: &[Shape], out: &Shape) -> Result<Option<Shape>, String> {
    let same_as_first = |ps: &[Shape]| -> Result<Option<Shape>, String> {
        match ps.first() {
            Some(s) => Ok(Some(s.clone())),
            None => Err("op with no recorded parents".into()),
        }
    };
    match op {
        // Elementwise binaries: same shape, or [n, d] ∘ [d]-row broadcast.
        "add" | "sub" | "mul" | "div" => {
            if parents.len() != 2 {
                return Err(format!("{op} expects 2 parents, tape has {}", parents.len()));
            }
            let (l, r) = (&parents[0], &parents[1]);
            if l == r {
                return Ok(Some(l.clone()));
            }
            if l.rank() > 2 || r.rank() > 2 {
                return Err(format!("elementwise {op} on rank>2 shapes {l} vs {r}"));
            }
            let (lr, lc) = l.as_matrix();
            let (rr, rc) = r.as_matrix();
            let row_broadcast = (lc == rc && rr == 1 && lr >= 1) || (r.rank() == 1 && r.len() == lc);
            if row_broadcast {
                Ok(Some(l.clone()))
            } else {
                Err(format!("incompatible elementwise shapes {l} vs {r}"))
            }
        }
        // Unary same-shape ops.
        "add_scalar" | "mul_scalar" | "sigmoid" | "tanh" | "relu" | "exp" | "log" | "sqrt"
        | "square" | "clamp" | "softmax_rows" | "log_softmax_rows" | "layer_norm_rows"
        | "l2_normalize_rows" | "normalize_scale_rows" => same_as_first(parents),
        "matmul" => {
            if parents.len() != 2 {
                return Err(format!("matmul expects 2 parents, tape has {}", parents.len()));
            }
            let (l, r) = (&parents[0], &parents[1]);
            if l.rank() != 2 || r.rank() != 2 {
                return Err(format!("matmul needs rank-2 operands, got {l} · {r}"));
            }
            let (m, k) = l.as_matrix();
            let (k2, n) = r.as_matrix();
            if k != k2 {
                return Err(format!("matmul inner dims disagree: {l} · {r}"));
            }
            Ok(Some(Shape::new(&[m, n])))
        }
        "matmul_nt" => {
            if parents.len() != 2 {
                return Err(format!("matmul_nt expects 2 parents, tape has {}", parents.len()));
            }
            let (l, r) = (&parents[0], &parents[1]);
            if l.rank() != 2 || r.rank() != 2 {
                return Err(format!("matmul_nt needs rank-2 operands, got {l} · {r}"));
            }
            let (m, k) = l.as_matrix();
            let (n, k2) = r.as_matrix();
            if k != k2 {
                return Err(format!("matmul_nt inner dims disagree: {l} · {r}"));
            }
            Ok(Some(Shape::new(&[m, n])))
        }
        "bmm" | "bmm_nt" => {
            if parents.len() != 2 {
                return Err(format!("{op} expects 2 parents, tape has {}", parents.len()));
            }
            let (l, r) = (&parents[0], &parents[1]);
            if l.rank() != 3 || r.rank() != 3 {
                return Err(format!("{op} needs rank-3 operands, got {l} · {r}"));
            }
            let (ld, rd) = (l.dims(), r.dims());
            if ld[0] != rd[0] {
                return Err(format!("{op} batch dims disagree: {l} vs {r}"));
            }
            // bmm:    [b, m, k] · [b, k, n] -> [b, m, n]
            // bmm_nt: [b, m, k] · [b, n, k] -> [b, m, n]
            let (k_l, k_r, n) = if op == "bmm" {
                (ld[2], rd[1], rd[2])
            } else {
                (ld[2], rd[2], rd[1])
            };
            if k_l != k_r {
                return Err(format!("{op} inner dims disagree: {l} · {r}"));
            }
            Ok(Some(Shape::new(&[ld[0], ld[1], n])))
        }
        "transpose" => {
            let p = parents.first().ok_or("transpose with no parent")?;
            if p.rank() != 2 {
                return Err(format!("transpose needs rank 2, got {p}"));
            }
            let (m, n) = p.as_matrix();
            Ok(Some(Shape::new(&[n, m])))
        }
        "sum" | "cross_entropy" => Ok(Some(Shape::scalar())),
        "mean_rows" => {
            let p = parents.first().ok_or("mean_rows with no parent")?;
            Ok(Some(Shape::new(&[p.cols()])))
        }
        "sum_cols" => {
            let p = parents.first().ok_or("sum_cols with no parent")?;
            Ok(Some(Shape::new(&[p.rows()])))
        }
        "reshape" => {
            let p = parents.first().ok_or("reshape with no parent")?;
            if p.len() != out.len() {
                return Err(format!("reshape changes element count: {p} -> {out}"));
            }
            Ok(None)
        }
        "gather_rows" => {
            let p = parents.first().ok_or("gather_rows with no parent")?;
            if p.rank() != 2 {
                return Err(format!("gather_rows needs rank-2 source, got {p}"));
            }
            if out.rank() != 2 || out.cols() != p.cols() {
                return Err(format!(
                    "gather_rows output {out} does not preserve source columns of {p}"
                ));
            }
            Ok(None)
        }
        "concat_rows" => {
            let first = parents.first().ok_or("concat_rows with no parents")?;
            let cols = first.cols();
            let mut rows = 0;
            for p in parents {
                if p.cols() != cols {
                    return Err(format!("concat_rows column mismatch: {first} vs {p}"));
                }
                rows += p.rows();
            }
            Ok(Some(Shape::new(&[rows, cols])))
        }
        "concat_cols" => {
            if parents.len() != 2 {
                return Err(format!(
                    "concat_cols expects 2 parents, tape has {}",
                    parents.len()
                ));
            }
            let total: usize = parents.iter().map(Shape::len).sum();
            if out.len() != total {
                return Err(format!(
                    "concat_cols output {out} does not hold {total} elements"
                ));
            }
            Ok(None)
        }
        // Unknown op (downstream crates may add their own): no inference.
        _ => Ok(None),
    }
}

// ---------------------------------------------------------------------------
// Validation passes
// ---------------------------------------------------------------------------

/// Ops that bound or shift their input enough to make a following `log` or
/// `div` denominator numerically safe.
fn is_guard(op: &str) -> bool {
    matches!(
        op,
        "clamp"
            | "add_scalar"
            | "softmax_rows"
            | "sigmoid"
            | "exp"
            | "l2_normalize_rows"
            | "normalize_scale_rows"
    )
}

fn check_node(node: &Tensor, diags: &mut Vec<Diagnostic>) {
    let parents = node.parents();
    if parents.is_empty() {
        return; // leaf or history-free node: nothing to re-infer
    }
    let parent_shapes: Vec<Shape> = parents.iter().map(|p| p.shape().clone()).collect();

    // Symbolic shape/rank inference against the recorded output shape.
    match infer_shape(node.op(), &parent_shapes, node.shape()) {
        Err(msg) => diags.push(Diagnostic {
            rule: "shape-mismatch",
            severity: Severity::Error,
            node: node.id(),
            op: node.op(),
            message: msg,
        }),
        Ok(Some(expected)) if &expected != node.shape() => diags.push(Diagnostic {
            rule: "shape-mismatch",
            severity: Severity::Error,
            node: node.id(),
            op: node.op(),
            message: format!(
                "recorded output shape {} but {}({}) infers {}",
                node.shape(),
                node.op(),
                parent_shapes
                    .iter()
                    .map(|s| s.to_string())
                    .collect::<Vec<_>>()
                    .join(", "),
                expected
            ),
        }),
        Ok(_) => {}
    }

    // Numerical hazard patterns.
    match node.op() {
        "log" if !is_guard(parents[0].op()) => diags.push(Diagnostic {
            rule: "hazard-log",
            severity: Severity::Warning,
            node: node.id(),
            op: "log",
            message: format!(
                "log of `{}` output without clamp/epsilon guard; \
                 a zero or negative input yields -inf/NaN gradients \
                 (prefer log_softmax_rows or clamp + add_scalar)",
                parents[0].op()
            ),
        }),
        "exp" => diags.push(Diagnostic {
            rule: "hazard-exp",
            severity: Severity::Warning,
            node: node.id(),
            op: "exp",
            message: "raw exp in a differentiable graph overflows for moderate inputs; \
                      normalizations should go through softmax_rows/log_softmax_rows, \
                      which subtract the row max"
                .into(),
        }),
        "div" if !is_guard(parents[1].op()) => diags.push(Diagnostic {
            rule: "hazard-div",
            severity: Severity::Warning,
            node: node.id(),
            op: "div",
            message: format!(
                "division by `{}` output without clamp/epsilon guard; \
                 an exactly-zero denominator yields inf/NaN gradients",
                parents[1].op()
            ),
        }),
        _ => {}
    }
}

/// Validates the recorded autograd graph rooted at `root` (usually the
/// scalar loss): symbolic shape inference per node plus numerical-hazard
/// pattern checks. Runs **before** backward, so structural bugs surface as
/// diagnostics instead of index panics mid-sweep.
pub fn validate_graph(root: &Tensor) -> GraphReport {
    let nodes = reachable(root);
    let mut diags = Vec::new();
    for n in &nodes {
        check_node(n, &mut diags);
    }
    diags.sort_by_key(|d| match d.severity {
        Severity::Error => 0,
        Severity::Warning => 1,
    });
    GraphReport {
        diagnostics: diags,
        nodes_visited: nodes.len(),
    }
}

/// [`validate_graph`] plus optimizer↔graph reachability checks:
///
/// * every tensor in `params` (the optimizer's parameter list) must be
///   reachable from `root`, otherwise its gradient stays `None` forever and
///   the optimizer silently never updates it (`detached-param`);
/// * every tensor in `tracked` (intermediates the model registers for
///   inspection) that carries `requires_grad` history must be reachable,
///   otherwise its backward closure never runs and the gradient it would
///   produce is never consumed (`dead-gradient`).
pub fn validate_training_graph(
    root: &Tensor,
    params: &[Tensor],
    tracked: &[Tensor],
) -> GraphReport {
    let mut report = validate_graph(root);
    let reach: HashSet<u64> = reachable(root).iter().map(Tensor::id).collect();
    for p in params {
        if !reach.contains(&p.id()) {
            report.diagnostics.push(Diagnostic {
                rule: "detached-param",
                severity: Severity::Error,
                node: p.id(),
                op: p.op(),
                message: format!(
                    "optimizer parameter (shape {}) is unreachable from the loss; \
                     its gradient will never be populated and it will never train",
                    p.shape()
                ),
            });
        }
    }
    for t in tracked {
        if t.is_op_node() && !reach.contains(&t.id()) {
            report.diagnostics.push(Diagnostic {
                rule: "dead-gradient",
                severity: Severity::Warning,
                node: t.id(),
                op: t.op(),
                message: format!(
                    "tracked node (shape {}) does not feed the loss; \
                     its gradient is never consumed and its subgraph is dead weight",
                    t.shape()
                ),
            });
        }
    }
    report
}

// ---------------------------------------------------------------------------
// Universal finite-difference gradcheck
// ---------------------------------------------------------------------------

/// Checks the analytic gradient of the scalar-valued `f` at `input` against
/// central finite differences.
///
/// Returns the maximum normalized error `|analytic - numeric| / (1 + |numeric|)`
/// over all input elements, or a description of the first element exceeding
/// `tol`.
pub fn gradcheck<F>(input: &Tensor, f: F, eps: f32, tol: f32) -> Result<f32, String>
where
    F: Fn(&Tensor) -> Tensor,
{
    let out = f(input);
    if out.len() != 1 {
        return Err(format!("gradcheck requires a scalar output, got {}", out.shape()));
    }
    out.backward();
    let analytic = input
        .grad()
        .ok_or("input received no gradient; was requires_grad() called?")?;

    let base = input.to_vec();
    let mut max_err = 0.0f32;
    for i in 0..base.len() {
        let mut plus = base.clone();
        plus[i] += eps;
        let mut minus = base.clone();
        minus[i] -= eps;
        let fp = f(&Tensor::from_vec(plus, input.shape().dims())).to_vec()[0];
        let fm = f(&Tensor::from_vec(minus, input.shape().dims())).to_vec()[0];
        let numeric = (fp - fm) / (2.0 * eps);
        let err = (analytic[i] - numeric).abs() / (1.0 + numeric.abs());
        if err > tol {
            return Err(format!(
                "gradient mismatch at element {i}: analytic {} vs numeric {numeric} \
                 (normalized error {err:.2e} > tol {tol:.2e})",
                analytic[i]
            ));
        }
        max_err = max_err.max(err);
    }
    Ok(max_err)
}

/// One entry of the universal gradcheck registry: an op under test, the
/// input shape and domain to sample, and its finite-difference tolerance.
pub struct GradSpec {
    /// `"<ops file>::<case>"`, e.g. `"arith::add_lhs"`.
    pub name: &'static str,
    /// Source file stem under `crates/tensor/src/ops/` this case covers;
    /// the workspace lint requires every op file to appear at least once.
    pub file: &'static str,
    /// Input tensor dims.
    pub dims: &'static [usize],
    /// Inputs are sampled uniformly from `[lo, hi]` (ops like `log`, `sqrt`
    /// and division denominators need domains bounded away from zero).
    pub lo: f32,
    /// Upper bound of the sampling domain.
    pub hi: f32,
    /// Finite-difference step.
    pub eps: f32,
    /// Maximum allowed normalized error.
    pub tol: f32,
    /// Builds the scalar loss from the sampled input.
    pub build: fn(&Tensor) -> Tensor,
}

/// Deterministic pseudo-random constant tensor used by registry closures to
/// weight op outputs (a weighted sum catches transposed/permuted-gradient
/// bugs that a plain `.sum()` would miss).
fn weights(dims: &[usize], seed: u64) -> Tensor {
    let mut rng = Rng::seed_from_u64(seed ^ 0x5eed_cafe);
    let n: usize = dims.iter().product();
    let data: Vec<f32> = (0..n).map(|_| rng.uniform_range(-1.5, 1.5)).collect();
    Tensor::from_vec(data, dims)
}

/// Runs one registry entry over `seeds`, sampling a fresh input per seed.
/// Returns the worst normalized error seen, or the first failure.
pub fn run_gradcheck(spec: &GradSpec, seeds: &[u64]) -> Result<f32, String> {
    let mut worst = 0.0f32;
    for &seed in seeds {
        let mut rng = Rng::seed_from_u64(seed);
        let n: usize = spec.dims.iter().product();
        let data: Vec<f32> = (0..n)
            .map(|_| rng.uniform_range(spec.lo, spec.hi))
            .collect();
        let input = Tensor::from_vec(data, spec.dims).requires_grad();
        match gradcheck(&input, spec.build, spec.eps, spec.tol) {
            Ok(err) => worst = worst.max(err),
            Err(e) => return Err(format!("{} (seed {seed}): {e}", spec.name)),
        }
    }
    Ok(worst)
}

/// The universal registry: every differentiable op in
/// `crates/tensor/src/ops/{activation,arith,extras,index,loss,matmul,norm,reduce}.rs`
/// with both gradient paths of binary ops covered.
pub fn gradcheck_specs() -> Vec<GradSpec> {
    fn w(dims: &[usize]) -> Tensor {
        weights(dims, 7)
    }
    vec![
        // ---- arith ----------------------------------------------------
        GradSpec {
            name: "arith::add_lhs",
            file: "arith",
            dims: &[3, 4],
            lo: -2.0,
            hi: 2.0,
            eps: 1e-2,
            tol: 1e-2,
            build: |x| x.add(&weights(&[3, 4], 1)).mul(&w(&[3, 4])).sum(),
        },
        GradSpec {
            name: "arith::add_rhs_row_broadcast",
            file: "arith",
            dims: &[4],
            lo: -2.0,
            hi: 2.0,
            eps: 1e-2,
            tol: 1e-2,
            build: |x| weights(&[3, 4], 2).add(x).mul(&w(&[3, 4])).sum(),
        },
        GradSpec {
            name: "arith::sub_lhs",
            file: "arith",
            dims: &[3, 4],
            lo: -2.0,
            hi: 2.0,
            eps: 1e-2,
            tol: 1e-2,
            build: |x| x.sub(&weights(&[3, 4], 3)).mul(&w(&[3, 4])).sum(),
        },
        GradSpec {
            name: "arith::sub_rhs_row_broadcast",
            file: "arith",
            dims: &[4],
            lo: -2.0,
            hi: 2.0,
            eps: 1e-2,
            tol: 1e-2,
            build: |x| weights(&[3, 4], 4).sub(x).mul(&w(&[3, 4])).sum(),
        },
        GradSpec {
            name: "arith::mul_lhs",
            file: "arith",
            dims: &[3, 4],
            lo: -2.0,
            hi: 2.0,
            eps: 1e-2,
            tol: 1e-2,
            build: |x| x.mul(&weights(&[3, 4], 5)).mul(&w(&[3, 4])).sum(),
        },
        GradSpec {
            name: "arith::mul_rhs_row_broadcast",
            file: "arith",
            dims: &[4],
            lo: -2.0,
            hi: 2.0,
            eps: 1e-2,
            tol: 1e-2,
            build: |x| weights(&[3, 4], 6).mul(x).mul(&w(&[3, 4])).sum(),
        },
        GradSpec {
            name: "arith::div_numerator",
            file: "arith",
            dims: &[3, 4],
            lo: -2.0,
            hi: 2.0,
            eps: 1e-2,
            tol: 1e-2,
            build: |x| {
                // denominator bounded away from zero
                let d = weights(&[3, 4], 8).clamp(0.5, 2.0);
                x.div(&d).mul(&w(&[3, 4])).sum()
            },
        },
        GradSpec {
            name: "arith::div_denominator",
            file: "arith",
            dims: &[3, 4],
            lo: 0.5,
            hi: 2.0,
            eps: 1e-3,
            tol: 2e-2,
            build: |x| weights(&[3, 4], 9).div(x).mul(&w(&[3, 4])).sum(),
        },
        GradSpec {
            name: "arith::div_denominator_row_broadcast",
            file: "arith",
            dims: &[4],
            lo: 0.5,
            hi: 2.0,
            eps: 1e-3,
            tol: 2e-2,
            build: |x| weights(&[3, 4], 10).div(x).mul(&w(&[3, 4])).sum(),
        },
        GradSpec {
            name: "arith::add_scalar",
            file: "arith",
            dims: &[5],
            lo: -2.0,
            hi: 2.0,
            eps: 1e-2,
            tol: 1e-2,
            build: |x| x.add_scalar(0.7).mul(&w(&[5])).sum(),
        },
        GradSpec {
            name: "arith::mul_scalar",
            file: "arith",
            dims: &[5],
            lo: -2.0,
            hi: 2.0,
            eps: 1e-2,
            tol: 1e-2,
            build: |x| x.mul_scalar(-1.3).mul(&w(&[5])).sum(),
        },
        GradSpec {
            name: "arith::neg_one_minus",
            file: "arith",
            dims: &[5],
            lo: -2.0,
            hi: 2.0,
            eps: 1e-2,
            tol: 1e-2,
            build: |x| x.neg().add(&x.one_minus()).mul(&w(&[5])).sum(),
        },
        GradSpec {
            name: "arith::reshape",
            file: "arith",
            dims: &[6],
            lo: -2.0,
            hi: 2.0,
            eps: 1e-2,
            tol: 1e-2,
            build: |x| x.reshape(&[2, 3]).mul(&w(&[2, 3])).sum(),
        },
        // ---- matmul ---------------------------------------------------
        GradSpec {
            name: "matmul::lhs",
            file: "matmul",
            dims: &[3, 4],
            lo: -1.0,
            hi: 1.0,
            eps: 1e-2,
            tol: 1e-2,
            build: |x| x.matmul(&weights(&[4, 2], 11)).mul(&w(&[3, 2])).sum(),
        },
        GradSpec {
            name: "matmul::rhs",
            file: "matmul",
            dims: &[4, 2],
            lo: -1.0,
            hi: 1.0,
            eps: 1e-2,
            tol: 1e-2,
            build: |x| weights(&[3, 4], 12).matmul(x).mul(&w(&[3, 2])).sum(),
        },
        GradSpec {
            name: "matmul::matmul_nt_lhs",
            file: "matmul",
            dims: &[3, 4],
            lo: -1.0,
            hi: 1.0,
            eps: 1e-2,
            tol: 1e-2,
            build: |x| x.matmul_nt(&weights(&[2, 4], 11)).mul(&w(&[3, 2])).sum(),
        },
        GradSpec {
            name: "matmul::matmul_nt_rhs",
            file: "matmul",
            dims: &[2, 4],
            lo: -1.0,
            hi: 1.0,
            eps: 1e-2,
            tol: 1e-2,
            build: |x| weights(&[3, 4], 12).matmul_nt(x).mul(&w(&[3, 2])).sum(),
        },
        // ---- fused ----------------------------------------------------
        GradSpec {
            name: "fused::normalize_scale_rows",
            file: "fused",
            dims: &[2, 6],
            lo: -1.5,
            hi: 1.5,
            eps: 1e-3,
            tol: 2e-2,
            build: |x| x.normalize_scale_rows(1e-12, 12.0).mul(&w(&[2, 6])).sum(),
        },
        GradSpec {
            name: "matmul::transpose",
            file: "matmul",
            dims: &[2, 5],
            lo: -1.0,
            hi: 1.0,
            eps: 1e-2,
            tol: 1e-2,
            build: |x| x.transpose().mul(&w(&[5, 2])).sum(),
        },
        GradSpec {
            name: "matmul::dot",
            file: "matmul",
            dims: &[6],
            lo: -1.0,
            hi: 1.0,
            eps: 1e-2,
            tol: 1e-2,
            build: |x| x.dot(&weights(&[6], 13)),
        },
        // ---- activation -----------------------------------------------
        GradSpec {
            name: "activation::sigmoid",
            file: "activation",
            dims: &[6],
            lo: -3.0,
            hi: 3.0,
            eps: 1e-2,
            tol: 1e-2,
            build: |x| x.sigmoid().mul(&w(&[6])).sum(),
        },
        GradSpec {
            name: "activation::tanh",
            file: "activation",
            dims: &[6],
            lo: -2.0,
            hi: 2.0,
            eps: 1e-2,
            tol: 1e-2,
            build: |x| x.tanh().mul(&w(&[6])).sum(),
        },
        GradSpec {
            name: "activation::relu",
            file: "activation",
            dims: &[6],
            // sampled away from the kink at 0, where the subgradient makes
            // finite differences disagree by construction
            lo: 0.2,
            hi: 2.0,
            eps: 1e-2,
            tol: 1e-2,
            build: |x| x.relu().mul(&w(&[6])).sum(),
        },
        GradSpec {
            name: "activation::exp",
            file: "activation",
            dims: &[6],
            lo: -1.0,
            hi: 1.0,
            eps: 1e-2,
            tol: 1e-2,
            build: |x| x.exp().mul(&w(&[6])).sum(),
        },
        GradSpec {
            name: "activation::log",
            file: "activation",
            dims: &[6],
            lo: 0.5,
            hi: 2.5,
            eps: 1e-3,
            tol: 2e-2,
            build: |x| x.log().mul(&w(&[6])).sum(),
        },
        GradSpec {
            name: "activation::sqrt",
            file: "activation",
            dims: &[6],
            lo: 0.5,
            hi: 2.5,
            eps: 1e-3,
            tol: 2e-2,
            build: |x| x.sqrt().mul(&w(&[6])).sum(),
        },
        GradSpec {
            name: "activation::square",
            file: "activation",
            dims: &[6],
            lo: -2.0,
            hi: 2.0,
            eps: 1e-2,
            tol: 1e-2,
            build: |x| x.square().mul(&w(&[6])).sum(),
        },
        // ---- reduce ---------------------------------------------------
        GradSpec {
            name: "reduce::sum_mean",
            file: "reduce",
            dims: &[3, 4],
            lo: -2.0,
            hi: 2.0,
            eps: 1e-2,
            tol: 1e-2,
            build: |x| x.sum().add(&x.mean()),
        },
        GradSpec {
            name: "reduce::mean_rows",
            file: "reduce",
            dims: &[3, 4],
            lo: -2.0,
            hi: 2.0,
            eps: 1e-2,
            tol: 1e-2,
            build: |x| x.mean_rows().mul(&w(&[4])).sum(),
        },
        GradSpec {
            name: "reduce::sum_cols",
            file: "reduce",
            dims: &[3, 4],
            lo: -2.0,
            hi: 2.0,
            eps: 1e-2,
            tol: 1e-2,
            build: |x| x.sum_cols().mul(&w(&[3])).sum(),
        },
        GradSpec {
            name: "reduce::sum_rows",
            file: "reduce",
            dims: &[3, 4],
            lo: -2.0,
            hi: 2.0,
            eps: 1e-2,
            tol: 1e-2,
            build: |x| x.sum_rows().mul(&w(&[4])).sum(),
        },
        // ---- norm -----------------------------------------------------
        GradSpec {
            name: "norm::softmax_rows",
            file: "norm",
            dims: &[3, 4],
            lo: -2.0,
            hi: 2.0,
            eps: 1e-2,
            tol: 2e-2,
            build: |x| x.softmax_rows().mul(&w(&[3, 4])).sum(),
        },
        GradSpec {
            name: "norm::log_softmax_rows",
            file: "norm",
            dims: &[3, 4],
            lo: -2.0,
            hi: 2.0,
            eps: 1e-2,
            tol: 2e-2,
            build: |x| x.log_softmax_rows().mul(&w(&[3, 4])).sum(),
        },
        GradSpec {
            name: "norm::layer_norm_rows",
            file: "norm",
            dims: &[2, 6],
            lo: -2.0,
            hi: 2.0,
            eps: 1e-2,
            tol: 5e-2,
            build: |x| x.layer_norm_rows(1e-5).mul(&w(&[2, 6])).sum(),
        },
        GradSpec {
            name: "norm::l2_normalize_rows",
            file: "norm",
            dims: &[2, 6],
            lo: -2.0,
            hi: 2.0,
            eps: 1e-2,
            tol: 2e-2,
            build: |x| x.l2_normalize_rows(1e-12).mul(&w(&[2, 6])).sum(),
        },
        GradSpec {
            name: "norm::softmax_rank1",
            file: "norm",
            dims: &[5],
            lo: -2.0,
            hi: 2.0,
            eps: 1e-2,
            tol: 2e-2,
            build: |x| x.softmax().mul(&w(&[5])).sum(),
        },
        // ---- loss -----------------------------------------------------
        GradSpec {
            name: "loss::cross_entropy",
            file: "loss",
            dims: &[3, 5],
            lo: -2.0,
            hi: 2.0,
            eps: 1e-2,
            tol: 2e-2,
            build: |x| x.cross_entropy(&[2, 0, 4]),
        },
        GradSpec {
            name: "loss::cross_entropy_single",
            file: "loss",
            dims: &[7],
            lo: -2.0,
            hi: 2.0,
            eps: 1e-2,
            tol: 2e-2,
            build: |x| x.cross_entropy_single(3),
        },
        // ---- index ----------------------------------------------------
        GradSpec {
            name: "index::gather_rows_with_repeats",
            file: "index",
            dims: &[4, 3],
            lo: -2.0,
            hi: 2.0,
            eps: 1e-2,
            tol: 1e-2,
            build: |x| x.gather_rows(&[1, 3, 1, 0]).mul(&w(&[4, 3])).sum(),
        },
        GradSpec {
            name: "index::row_slice_rows",
            file: "index",
            dims: &[4, 3],
            lo: -2.0,
            hi: 2.0,
            eps: 1e-2,
            tol: 1e-2,
            build: |x| {
                x.row(2)
                    .mul(&w(&[3]))
                    .sum()
                    .add(&x.slice_rows(0, 2).mul(&weights(&[2, 3], 14)).sum())
            },
        },
        GradSpec {
            name: "index::concat_rows",
            file: "index",
            dims: &[2, 3],
            lo: -2.0,
            hi: 2.0,
            eps: 1e-2,
            tol: 1e-2,
            build: |x| {
                Tensor::concat_rows(&[x.clone(), weights(&[1, 3], 15)])
                    .mul(&w(&[3, 3]))
                    .sum()
            },
        },
        GradSpec {
            name: "index::concat_cols_lhs",
            file: "index",
            dims: &[2, 3],
            lo: -2.0,
            hi: 2.0,
            eps: 1e-2,
            tol: 1e-2,
            build: |x| x.concat_cols(&weights(&[2, 2], 16)).mul(&w(&[2, 5])).sum(),
        },
        GradSpec {
            name: "index::concat_cols_rhs",
            file: "index",
            dims: &[2, 2],
            lo: -2.0,
            hi: 2.0,
            eps: 1e-2,
            tol: 1e-2,
            build: |x| weights(&[2, 3], 17).concat_cols(x).mul(&w(&[2, 5])).sum(),
        },
        GradSpec {
            name: "index::stack_rows",
            file: "index",
            dims: &[4],
            lo: -2.0,
            hi: 2.0,
            eps: 1e-2,
            tol: 1e-2,
            build: |x| {
                Tensor::stack_rows(&[x.clone(), weights(&[4], 18)])
                    .mul(&w(&[2, 4]))
                    .sum()
            },
        },
        // ---- kernels --------------------------------------------------
        GradSpec {
            name: "kernels::bmm_lhs",
            file: "kernels",
            dims: &[2, 3, 4],
            lo: -1.0,
            hi: 1.0,
            eps: 1e-2,
            tol: 1e-2,
            // weighted sums go through a rank-2 reshape: elementwise ops
            // (and their row-broadcast analysis) are defined on matrices
            build: |x| x.bmm(&weights(&[2, 4, 2], 19)).reshape(&[6, 2]).mul(&w(&[6, 2])).sum(),
        },
        GradSpec {
            name: "kernels::bmm_rhs",
            file: "kernels",
            dims: &[2, 4, 2],
            lo: -1.0,
            hi: 1.0,
            eps: 1e-2,
            tol: 1e-2,
            build: |x| weights(&[2, 3, 4], 20).bmm(x).reshape(&[6, 2]).mul(&w(&[6, 2])).sum(),
        },
        GradSpec {
            name: "kernels::bmm_nt_lhs",
            file: "kernels",
            dims: &[2, 3, 4],
            lo: -1.0,
            hi: 1.0,
            eps: 1e-2,
            tol: 1e-2,
            build: |x| x.bmm_nt(&weights(&[2, 2, 4], 21)).reshape(&[6, 2]).mul(&w(&[6, 2])).sum(),
        },
        GradSpec {
            name: "kernels::bmm_nt_rhs",
            file: "kernels",
            dims: &[2, 2, 4],
            lo: -1.0,
            hi: 1.0,
            eps: 1e-2,
            tol: 1e-2,
            build: |x| weights(&[2, 3, 4], 22).bmm_nt(x).reshape(&[6, 2]).mul(&w(&[6, 2])).sum(),
        },
        // ---- extras ---------------------------------------------------
        GradSpec {
            name: "extras::clamp_interior",
            file: "extras",
            // sampled strictly inside the clamp range so the finite
            // difference never straddles the non-differentiable bound
            dims: &[6],
            lo: -0.8,
            hi: 0.8,
            eps: 1e-3,
            tol: 1e-2,
            build: |x| x.clamp(-1.0, 1.0).mul(&w(&[6])).sum(),
        },
        GradSpec {
            name: "extras::masked_softmax_rows",
            file: "extras",
            dims: &[2, 4],
            lo: -2.0,
            hi: 2.0,
            eps: 1e-2,
            tol: 2e-2,
            build: |x| {
                x.masked_softmax_rows(&[1.0, 1.0, 0.0, 1.0, 0.0, 1.0, 1.0, 1.0])
                    .mul(&w(&[2, 4]))
                    .sum()
            },
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;

    // ---- validator fixtures (one diagnostic each) ----------------------

    #[test]
    fn detached_parameter_yields_exactly_one_diagnostic() {
        let used = Tensor::from_vec(vec![1.0, 2.0], &[2]).requires_grad();
        let unused = Tensor::from_vec(vec![3.0], &[1]).requires_grad();
        let loss = used.square().sum();
        let report =
            validate_training_graph(&loss, &[used.clone(), unused.clone()], &[]);
        let hits = report.with_rule("detached-param");
        assert_eq!(hits.len(), 1, "{:?}", report.diagnostics);
        assert_eq!(hits[0].node, unused.id());
        assert_eq!(hits[0].severity, Severity::Error);
        assert!(!report.is_clean());
    }

    #[test]
    fn dead_gradient_yields_exactly_one_diagnostic() {
        let x = Tensor::from_vec(vec![0.5, -0.5], &[2]).requires_grad();
        let dead = x.sigmoid(); // built, never used in the loss
        let loss = x.square().sum();
        let report = validate_training_graph(
            &loss,
            std::slice::from_ref(&x),
            std::slice::from_ref(&dead),
        );
        let hits = report.with_rule("dead-gradient");
        assert_eq!(hits.len(), 1, "{:?}", report.diagnostics);
        assert_eq!(hits[0].node, dead.id());
        assert_eq!(hits[0].severity, Severity::Warning);
        // a dead gradient is a warning: the pass itself stays clean
        assert!(report.is_clean());
    }

    #[test]
    fn shape_mismatch_yields_exactly_one_diagnostic() {
        // Hand-assemble a tape node whose recorded shape contradicts what
        // matmul([2,3]·[3,2]) must produce. Element count matches, so the
        // constructor's debug assertion passes — only symbolic inference
        // can catch it.
        let a = Tensor::zeros(&[2, 3]).requires_grad();
        let b = Tensor::zeros(&[3, 2]).requires_grad();
        let bad = Tensor::from_op(
            vec![0.0; 4],
            Shape::new(&[4]),
            vec![a.clone(), b.clone()],
            "matmul",
            Box::new(|_| {}),
        );
        let report = validate_graph(&bad);
        let hits = report.with_rule("shape-mismatch");
        assert_eq!(hits.len(), 1, "{:?}", report.diagnostics);
        assert!(hits[0].message.contains("[2, 2]"), "{}", hits[0].message);
        assert!(!report.is_clean());
    }

    #[test]
    fn incompatible_matmul_parents_are_an_error() {
        let a = Tensor::zeros(&[2, 3]).requires_grad();
        let b = Tensor::zeros(&[4, 2]).requires_grad(); // inner dims 3 vs 4
        let bad = Tensor::from_op(
            vec![0.0; 4],
            Shape::new(&[2, 2]),
            vec![a, b],
            "matmul",
            Box::new(|_| {}),
        );
        let report = validate_graph(&bad);
        assert_eq!(report.with_rule("shape-mismatch").len(), 1);
    }

    #[test]
    fn clean_graph_validates_clean() {
        let x = Tensor::from_vec(vec![0.1, 0.2, 0.3, 0.4], &[2, 2]).requires_grad();
        let w = Tensor::from_vec(vec![1.0, -1.0, 0.5, 0.5], &[2, 2]).requires_grad();
        let loss = x.matmul(&w).softmax_rows().cross_entropy(&[0, 1]);
        let report = validate_training_graph(&loss, &[x, w], &[]);
        assert!(report.is_clean(), "{:?}", report.diagnostics);
        assert!(report.nodes_visited >= 4);
    }

    // ---- hazard patterns -----------------------------------------------

    #[test]
    fn unguarded_log_warns_and_guarded_log_does_not() {
        let x = Tensor::from_vec(vec![0.5, 1.5], &[2]).requires_grad();
        let raw = x.mul_scalar(1.0).log().sum();
        assert_eq!(validate_graph(&raw).with_rule("hazard-log").len(), 1);

        let guarded = x.clamp(1e-6, f32::INFINITY).log().sum();
        assert_eq!(validate_graph(&guarded).with_rule("hazard-log").len(), 0);
        let eps_guarded = x.square().add_scalar(1e-6).log().sum();
        assert_eq!(validate_graph(&eps_guarded).with_rule("hazard-log").len(), 0);
    }

    #[test]
    fn unguarded_division_warns() {
        let x = Tensor::from_vec(vec![1.0, 2.0], &[2]).requires_grad();
        let denom = x.mul_scalar(2.0);
        let report = validate_graph(&x.div(&denom).sum());
        assert_eq!(report.with_rule("hazard-div").len(), 1);

        let safe = x.div(&x.square().add_scalar(1e-6)).sum();
        assert_eq!(validate_graph(&safe).with_rule("hazard-div").len(), 0);
    }

    #[test]
    fn raw_exp_in_graph_warns() {
        let x = Tensor::from_vec(vec![1.0], &[1]).requires_grad();
        let report = validate_graph(&x.exp().sum());
        assert_eq!(report.with_rule("hazard-exp").len(), 1);
        assert_eq!(report.warning_count(), 1);
    }

    // ---- gradcheck harness ---------------------------------------------

    #[test]
    fn gradcheck_accepts_correct_gradient() {
        let x = Tensor::from_vec(vec![0.5, -1.0, 2.0], &[3]).requires_grad();
        let err = gradcheck(&x, |x| x.square().sum(), 1e-2, 1e-2).expect("must pass");
        assert!(err <= 1e-2);
    }

    #[test]
    fn gradcheck_rejects_wrong_gradient() {
        // sum() has gradient 1 everywhere; scale the loss *data* without a
        // matching backward by hand-assembling the node.
        let x = Tensor::from_vec(vec![1.0, 2.0], &[2]).requires_grad();
        let result = gradcheck(
            &x,
            |x| {
                let s: f32 = x.data().iter().sum();
                let p = x.clone();
                Tensor::from_op(
                    vec![2.0 * s],
                    Shape::scalar(),
                    vec![x.clone()],
                    "sum",
                    Box::new(move |g| p.accumulate_grad_public(&[g[0], g[0]])),
                )
            },
            1e-2,
            1e-2,
        );
        assert!(result.is_err(), "wrong gradient must be rejected");
    }

    #[test]
    fn registry_covers_every_ops_file() {
        let specs = gradcheck_specs();
        for stem in [
            "activation",
            "arith",
            "extras",
            "index",
            "kernels",
            "loss",
            "matmul",
            "norm",
            "reduce",
        ] {
            assert!(
                specs.iter().any(|s| s.file == stem),
                "no gradcheck entry covers ops/{stem}.rs"
            );
        }
    }
}
