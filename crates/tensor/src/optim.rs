//! Optimizers. The paper trains every neural model with Adam; plain SGD is
//! included for tests and ablations.

use std::collections::HashMap;

use crate::tensor::Tensor;

/// Common optimizer interface over a fixed parameter list.
pub trait Optimizer {
    /// Applies one update using the gradients currently accumulated on the
    /// parameters.
    fn step(&mut self);

    /// Clears the gradients of all parameters.
    fn zero_grad(&self);
}

/// Configuration for [`Adam`]. Defaults follow the paper (lr tuned per
/// dataset; β/ε at their standard values).
#[derive(Clone, Copy, Debug)]
pub struct AdamConfig {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    /// L2 weight decay applied to the gradient (decoupled decay is not used
    /// by the paper's reference implementation).
    pub weight_decay: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
        }
    }
}

struct AdamState {
    m: Vec<f32>,
    v: Vec<f32>,
}

/// The Adam optimizer (Kingma & Ba, 2015) with bias correction.
pub struct Adam {
    params: Vec<Tensor>,
    cfg: AdamConfig,
    t: u64,
    state: HashMap<u64, AdamState>,
}

impl Adam {
    /// Creates an optimizer over `params`; duplicate handles (same id) are
    /// deduplicated so shared parameters update once per step.
    pub fn new(params: Vec<Tensor>, cfg: AdamConfig) -> Self {
        let mut seen = HashMap::new();
        let mut unique = Vec::with_capacity(params.len());
        for p in params {
            assert!(p.is_grad(), "Adam given a non-trainable tensor");
            if seen.insert(p.id(), ()).is_none() {
                unique.push(p);
            }
        }
        Adam {
            params: unique,
            cfg,
            t: 0,
            state: HashMap::new(),
        }
    }

    /// The learning rate currently in effect.
    pub fn lr(&self) -> f32 {
        self.cfg.lr
    }

    /// Replaces the learning rate (for decay schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.cfg.lr = lr;
    }

    /// Number of parameters tracked (after deduplication).
    pub fn num_params(&self) -> usize {
        self.params.len()
    }

    /// Exports the optimizer state for checkpointing: the step counter and
    /// per-parameter first/second moments in tracked-parameter order.
    /// Parameters that have not yet received a gradient export zero moments
    /// (exactly the state a fresh optimizer would hold for them).
    pub fn export_state(&self) -> (u64, Vec<AdamParamState>) {
        let moments = self
            .params
            .iter()
            .map(|p| match self.state.get(&p.id()) {
                Some(st) => AdamParamState {
                    m: st.m.clone(),
                    v: st.v.clone(),
                },
                None => AdamParamState {
                    m: vec![0.0; p.len()],
                    v: vec![0.0; p.len()],
                },
            })
            .collect();
        (self.t, moments)
    }

    /// Restores state produced by [`Adam::export_state`] onto this
    /// optimizer's tracked parameters (matched by position).
    ///
    /// # Errors
    /// Fails when the entry count or any moment length does not match the
    /// tracked parameters.
    pub fn import_state(&mut self, t: u64, moments: Vec<AdamParamState>) -> Result<(), String> {
        if moments.len() != self.params.len() {
            return Err(format!(
                "Adam state has {} entries, optimizer tracks {} parameters",
                moments.len(),
                self.params.len()
            ));
        }
        for (p, st) in self.params.iter().zip(&moments) {
            if st.m.len() != p.len() || st.v.len() != p.len() {
                return Err(format!(
                    "Adam state moment length {}/{} vs parameter length {}",
                    st.m.len(),
                    st.v.len(),
                    p.len()
                ));
            }
        }
        self.t = t;
        self.state = self
            .params
            .iter()
            .zip(moments)
            .map(|(p, st)| (p.id(), AdamState { m: st.m, v: st.v }))
            .collect();
        Ok(())
    }
}

/// One parameter's Adam moments, as exported by [`Adam::export_state`] for
/// mid-training checkpoints.
#[derive(Clone, Debug)]
pub struct AdamParamState {
    /// First-moment (mean) accumulator.
    pub m: Vec<f32>,
    /// Second-moment (uncentered variance) accumulator.
    pub v: Vec<f32>,
}

impl Optimizer for Adam {
    fn step(&mut self) {
        self.t += 1;
        let cfg = self.cfg;
        let bc1 = 1.0 - cfg.beta1.powi(self.t as i32);
        let bc2 = 1.0 - cfg.beta2.powi(self.t as i32);
        for p in &self.params {
            // Borrow the gradient and mutate the data in place: the update
            // used to clone both and build a `delta` vec every step, which
            // dominated steady-state allocations. The arithmetic is the same
            // expression tree, so updates are bitwise-identical.
            let grad_slot = p.inner.grad.borrow();
            let Some(grad) = grad_slot.as_ref() else {
                continue;
            };
            let n = grad.len();
            let st = self.state.entry(p.id()).or_insert_with(|| AdamState {
                m: vec![0.0; n],
                v: vec![0.0; n],
            });
            let mut data = p.inner.data.borrow_mut();
            for i in 0..n {
                let mut g = grad[i];
                if cfg.weight_decay > 0.0 {
                    g += cfg.weight_decay * data[i];
                }
                st.m[i] = cfg.beta1 * st.m[i] + (1.0 - cfg.beta1) * g;
                st.v[i] = cfg.beta2 * st.v[i] + (1.0 - cfg.beta2) * g * g;
                let m_hat = st.m[i] / bc1;
                let v_hat = st.v[i] / bc2;
                data[i] -= cfg.lr * (m_hat / (v_hat.sqrt() + cfg.eps));
            }
        }
    }

    fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }
}

/// Plain stochastic gradient descent.
pub struct Sgd {
    params: Vec<Tensor>,
    pub lr: f32,
}

impl Sgd {
    /// Creates an SGD optimizer with learning rate `lr`.
    pub fn new(params: Vec<Tensor>, lr: f32) -> Self {
        Sgd { params, lr }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self) {
        for p in &self.params {
            // Shared borrow instead of a clone; data and grad live in
            // separate cells so the in-place update is safe.
            let slot = p.inner.grad.borrow();
            if let Some(g) = slot.as_ref() {
                p.apply_update(g, self.lr);
            }
        }
    }

    fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }
}

/// Scales all gradients so their global L2 norm is at most `max_norm`.
/// Returns the pre-clip norm.
pub fn clip_grad_norm(params: &[Tensor], max_norm: f32) -> f32 {
    let mut total = 0.0f32;
    for p in params {
        if let Some(g) = p.inner.grad.borrow().as_ref() {
            total += g.iter().map(|&x| x * x).sum::<f32>();
        }
    }
    let norm = total.sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for p in params {
            // Scale in place: the clone + zero + re-accumulate round trip
            // allocated two buffers per clipped parameter per step.
            if let Some(g) = p.inner.grad.borrow_mut().as_mut() {
                for x in g.iter_mut() {
                    *x *= scale;
                }
            }
        }
    }
    norm
}

impl Tensor {
    /// Public accumulation hook used by [`clip_grad_norm`] and tests.
    pub fn accumulate_grad_public(&self, g: &[f32]) {
        self.accumulate_grad(g);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::assert_close;
    use crate::Tensor;

    fn quadratic_loss(p: &Tensor) -> Tensor {
        // loss = sum((p - 3)^2)
        p.add_scalar(-3.0).square().sum()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let p = Tensor::from_vec(vec![0.0, 10.0], &[2]).requires_grad();
        let mut opt = Sgd::new(vec![p.clone()], 0.1);
        for _ in 0..100 {
            opt.zero_grad();
            quadratic_loss(&p).backward();
            opt.step();
        }
        assert_close(&p.to_vec(), &[3.0, 3.0], 1e-3);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let p = Tensor::from_vec(vec![-5.0], &[1]).requires_grad();
        let mut opt = Adam::new(
            vec![p.clone()],
            AdamConfig {
                lr: 0.3,
                ..Default::default()
            },
        );
        for _ in 0..200 {
            opt.zero_grad();
            quadratic_loss(&p).backward();
            opt.step();
        }
        assert_close(&p.to_vec(), &[3.0], 1e-2);
    }

    #[test]
    fn adam_dedupes_shared_parameters() {
        let p = Tensor::zeros(&[1]).requires_grad();
        let opt = Adam::new(vec![p.clone(), p.clone(), p], AdamConfig::default());
        assert_eq!(opt.num_params(), 1);
    }

    #[test]
    fn step_skips_params_without_grad() {
        let p = Tensor::from_vec(vec![1.0], &[1]).requires_grad();
        let mut opt = Adam::new(vec![p.clone()], AdamConfig::default());
        opt.step(); // no grad accumulated: must not panic or move the param
        assert_eq!(p.to_vec(), vec![1.0]);
    }

    #[test]
    fn clip_grad_norm_scales_down() {
        let p = Tensor::zeros(&[2]).requires_grad();
        p.accumulate_grad_public(&[3.0, 4.0]); // norm 5
        let pre = clip_grad_norm(std::slice::from_ref(&p), 1.0);
        assert_close(&[pre], &[5.0], 1e-6);
        let g = p.grad().unwrap();
        assert_close(&g, &[0.6, 0.8], 1e-6);
    }

    #[test]
    fn clip_grad_norm_leaves_small_grads() {
        let p = Tensor::zeros(&[2]).requires_grad();
        p.accumulate_grad_public(&[0.3, 0.4]);
        clip_grad_norm(std::slice::from_ref(&p), 1.0);
        assert_close(&p.grad().unwrap(), &[0.3, 0.4], 1e-6);
    }

    #[test]
    fn weight_decay_pulls_toward_zero() {
        let p = Tensor::from_vec(vec![5.0], &[1]).requires_grad();
        let mut opt = Adam::new(
            vec![p.clone()],
            AdamConfig {
                lr: 0.1,
                weight_decay: 1.0,
                ..Default::default()
            },
        );
        for _ in 0..300 {
            opt.zero_grad();
            // zero data loss: only decay acts
            p.mul_scalar(0.0).sum().backward();
            opt.step();
        }
        assert!(p.to_vec()[0].abs() < 0.5);
    }
}
