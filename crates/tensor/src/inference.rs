//! Inference mode: a thread-local switch that disables autograd tape
//! recording for the duration of a closure.
//!
//! Ops always *skip* graph construction when no input requires gradients
//! (see [`crate::Tensor`]'s `from_op`), but a forward pass through a model
//! whose parameters are trainable leaves still records parents and backward
//! closures at every step — activations stay alive until the output is
//! dropped, and the tape bookkeeping is pure overhead when nobody will call
//! `backward`. [`inference_mode`] flips a thread-local flag that `from_op`
//! consults *in addition to* the parents' `requires_grad` bits: inside the
//! closure every op behaves as if its inputs were plain constants, so no
//! parents are retained, no backward closures are built, and each
//! intermediate activation returns to the [buffer pool](crate::pool_stats)
//! as soon as the next op consumes it.
//!
//! The flag only suppresses *tape construction*; forward arithmetic is the
//! identical code path, so values computed under inference mode are
//! bitwise-equal to the taped forward. The serving equivalence suite
//! asserts this end-to-end for full models.
//!
//! The guard is re-entrant and panic-safe: nesting keeps the flag set, and
//! unwinding restores the previous state.

use std::cell::Cell;

thread_local! {
    static INFERENCE: Cell<bool> = const { Cell::new(false) };
}

/// RAII restorer so the flag survives panics and nesting correctly.
struct Restore(bool);

impl Drop for Restore {
    fn drop(&mut self) {
        let _ = INFERENCE.try_with(|f| f.set(self.0));
    }
}

/// Runs `f` with autograd tape recording disabled on the calling thread.
///
/// Every tensor op executed inside `f` produces a constant (non-grad) node:
/// parents and backward closures are dropped immediately, so activations
/// recycle into the buffer pool as the forward pass proceeds. Values are
/// bitwise identical to the taped forward — only graph retention changes.
///
/// Nested calls are fine; the flag is restored (even on panic) when the
/// outermost call returns.
pub fn inference_mode<R>(f: impl FnOnce() -> R) -> R {
    let prev = INFERENCE.with(|flag| flag.replace(true));
    let _restore = Restore(prev);
    f()
}

/// True while the calling thread is inside [`inference_mode`].
pub fn is_inference() -> bool {
    INFERENCE.try_with(Cell::get).unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tensor;

    #[test]
    fn flag_is_scoped_and_nested() {
        assert!(!is_inference());
        inference_mode(|| {
            assert!(is_inference());
            inference_mode(|| assert!(is_inference()));
            assert!(is_inference(), "inner scope must not clear the flag");
        });
        assert!(!is_inference());
    }

    #[test]
    fn flag_restored_after_panic() {
        let result = std::panic::catch_unwind(|| {
            inference_mode(|| panic!("boom"));
        });
        assert!(result.is_err());
        assert!(!is_inference(), "panic must restore the flag");
    }

    #[test]
    fn ops_do_not_retain_graph_under_inference() {
        let w = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).requires_grad();
        let x = Tensor::from_vec(vec![0.5, -1.0], &[1, 2]);
        let taped = x.matmul(&w);
        assert!(taped.is_grad(), "taped forward must require grad");
        let frozen = inference_mode(|| x.matmul(&w));
        assert!(!frozen.is_grad(), "inference forward must not require grad");
    }

    #[test]
    fn values_bitwise_equal_with_and_without_tape() {
        let w = Tensor::from_vec(vec![0.1, -0.7, 1.3, 2.9, -0.2, 0.4], &[2, 3]).requires_grad();
        let x = Tensor::from_vec(vec![0.25, -1.5], &[1, 2]);
        let taped = x.matmul(&w).relu().softmax_rows();
        let frozen = inference_mode(|| x.matmul(&w).relu().softmax_rows());
        let a = taped.to_vec();
        let b = frozen.to_vec();
        assert_eq!(a.len(), b.len());
        for (i, (ta, fb)) in a.iter().zip(b.iter()).enumerate() {
            assert_eq!(
                ta.to_bits(),
                fb.to_bits(),
                "element {i}: taped {ta} vs inference {fb}"
            );
        }
    }
}
