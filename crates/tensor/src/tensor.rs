//! The core [`Tensor`] type: a handle to a node in a dynamically built
//! computation graph.

use std::cell::{Ref, RefCell};
use std::fmt;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::shape::Shape;

static NEXT_ID: AtomicU64 = AtomicU64::new(0);

/// Backward closure: receives the gradient flowing into this node and is
/// responsible for accumulating gradients into the node's parents (which it
/// captures by `Rc` clone).
pub(crate) type BackwardFn = Box<dyn Fn(&[f32])>;

pub(crate) struct Inner {
    pub(crate) id: u64,
    pub(crate) shape: Shape,
    /// Name of the op that produced this node (`"leaf"` for leaves); consumed
    /// by the [`crate::verify`] graph validator for symbolic shape inference.
    pub(crate) op: &'static str,
    pub(crate) data: RefCell<Vec<f32>>,
    pub(crate) grad: RefCell<Option<Vec<f32>>>,
    /// True for leaf parameters and for any node with a grad-requiring parent.
    pub(crate) requires_grad: bool,
    /// Parents are retained only when gradients are required, so inference
    /// does not build a graph.
    pub(crate) parents: Vec<Tensor>,
    pub(crate) backward: Option<BackwardFn>,
}

impl Drop for Inner {
    /// Recycles the node's data and gradient buffers into the thread-local
    /// [`crate::pool`]. This is how the buffer pool is threaded through the
    /// autograd tape: when a batch's graph is released, every forward
    /// activation and remaining grad buffer returns to the free-list, so the
    /// next batch's ops allocate nothing fresh in steady state.
    ///
    /// Teardown is iterative: naively dropping `parents` (and the parent
    /// handles captured by `backward` closures) would recurse once per graph
    /// node and overflow the stack on deep chains. Instead, uniquely-owned
    /// ancestors have their parents and closures stolen into an explicit
    /// worklist. Closures are drained *before* the tensor handles they
    /// capture, so a closure drop never releases the last handle of a node
    /// that still has a populated parent list.
    fn drop(&mut self) {
        crate::pool::give(std::mem::take(self.data.get_mut()));
        if let Some(g) = self.grad.get_mut().take() {
            crate::pool::give(g);
        }
        if self.parents.is_empty() && self.backward.is_none() {
            return;
        }
        let mut tensors: Vec<Tensor> = std::mem::take(&mut self.parents);
        let mut fns: Vec<BackwardFn> = Vec::new();
        if let Some(f) = self.backward.take() {
            fns.push(f);
        }
        loop {
            if let Some(f) = fns.pop() {
                drop(f);
                continue;
            }
            let Some(mut t) = tensors.pop() else { break };
            if let Some(inner) = Rc::get_mut(&mut t.inner) {
                tensors.append(&mut inner.parents);
                if let Some(f) = inner.backward.take() {
                    fns.push(f);
                }
            }
        }
    }
}

/// A dense `f32` tensor participating in reverse-mode autodiff.
///
/// `Tensor` is a cheap `Rc` handle; cloning shares the underlying node.
/// Operations are defined in the [`crate::ops`] modules as inherent methods.
#[derive(Clone)]
pub struct Tensor {
    pub(crate) inner: Rc<Inner>,
}

impl Tensor {
    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    /// Creates a tensor from raw data. `data.len()` must equal the product of
    /// `dims`.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        assert_eq!(
            data.len(),
            shape.len(),
            "data length {} does not match shape {shape}",
            data.len()
        );
        Self::leaf(data, shape, false)
    }

    /// A scalar tensor.
    pub fn scalar(v: f32) -> Self {
        Self::leaf(vec![v], Shape::scalar(), false)
    }

    /// A tensor of zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let n = shape.len();
        Self::leaf(vec![0.0; n], shape, false)
    }

    /// A tensor of ones.
    pub fn ones(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let n = shape.len();
        Self::leaf(vec![1.0; n], shape, false)
    }

    /// A tensor filled with `v`.
    pub fn full(dims: &[usize], v: f32) -> Self {
        let shape = Shape::new(dims);
        let n = shape.len();
        Self::leaf(vec![v; n], shape, false)
    }

    /// Marks this tensor as a leaf that accumulates gradients. Returns a new
    /// handle sharing the same storage.
    ///
    /// Intended for trainable parameters and gradient checks.
    pub fn requires_grad(&self) -> Tensor {
        if self.inner.requires_grad {
            return self.clone();
        }
        Tensor {
            inner: Rc::new(Inner {
                // ordering: Relaxed — the RMW alone makes ids unique; they
                // order nothing else.
                id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
                shape: self.inner.shape.clone(),
                op: "leaf",
                data: RefCell::new(self.inner.data.borrow().clone()),
                grad: RefCell::new(None),
                requires_grad: true,
                parents: Vec::new(),
                backward: None,
            }),
        }
    }

    pub(crate) fn leaf(data: Vec<f32>, shape: Shape, requires_grad: bool) -> Self {
        // Leaf buffers arrive from outside the pool (user vecs, `vec![..]`
        // constructors), so they are fresh heap allocations; count them under
        // the same fresh-allocation counters the pool maintains for op-buffer
        // misses. Leaves built from pooled buffers use [`Self::leaf_pooled`].
        if embsr_obs::metrics::enabled() {
            embsr_obs::metrics::counter("tensor.leaf_allocs").inc();
            embsr_obs::metrics::counter("tensor.alloc_count").inc();
            embsr_obs::metrics::counter("tensor.alloc_bytes")
                .add((data.len() * std::mem::size_of::<f32>()) as u64);
        }
        Self::leaf_raw(data, shape, requires_grad)
    }

    /// Leaf constructor for buffers obtained from the [`crate::pool`]
    /// (`detach`, masked softmax shifts): the pool already accounted for any
    /// fresh allocation at miss time, so only the leaf counter advances.
    pub(crate) fn leaf_pooled(data: Vec<f32>, shape: Shape, requires_grad: bool) -> Self {
        if embsr_obs::metrics::enabled() {
            embsr_obs::metrics::counter("tensor.leaf_allocs").inc();
        }
        Self::leaf_raw(data, shape, requires_grad)
    }

    fn leaf_raw(data: Vec<f32>, shape: Shape, requires_grad: bool) -> Self {
        Tensor {
            inner: Rc::new(Inner {
                // ordering: Relaxed — uniqueness comes from the RMW itself.
                id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
                shape,
                op: "leaf",
                data: RefCell::new(data),
                grad: RefCell::new(None),
                requires_grad,
                parents: Vec::new(),
                backward: None,
            }),
        }
    }

    /// Creates a non-leaf node from an op. When no parent requires grad the
    /// parents and closure are dropped so the graph is not retained.
    pub(crate) fn from_op(
        data: Vec<f32>,
        shape: Shape,
        parents: Vec<Tensor>,
        op: &'static str,
        backward: BackwardFn,
    ) -> Self {
        debug_assert_eq!(data.len(), shape.len());
        let requires_grad =
            !crate::inference::is_inference() && parents.iter().any(|p| p.inner.requires_grad);
        // Single central dispatch point for op telemetry: one relaxed-atomic
        // load when telemetry is off, so the hot path stays effectively free.
        // Fresh-allocation bytes are no longer counted here: op output
        // buffers come from the pool, which records `tensor.alloc_count` /
        // `tensor.alloc_bytes` only when a request misses the free-list.
        if embsr_obs::metrics::enabled() {
            embsr_obs::metrics::counter("tensor.ops_dispatched").inc();
            if requires_grad {
                embsr_obs::metrics::counter("tensor.graph_nodes_retained").inc();
            }
        }
        Tensor {
            inner: Rc::new(Inner {
                // ordering: Relaxed — uniqueness comes from the RMW itself.
                id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
                shape,
                op,
                data: RefCell::new(data),
                grad: RefCell::new(None),
                requires_grad,
                parents: if requires_grad { parents } else { Vec::new() },
                backward: if requires_grad { Some(backward) } else { None },
            }),
        }
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.inner.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.inner.shape.len()
    }

    /// True when the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of rows (matrix view).
    pub fn rows(&self) -> usize {
        self.inner.shape.rows()
    }

    /// Number of columns (matrix view).
    pub fn cols(&self) -> usize {
        self.inner.shape.cols()
    }

    /// Whether this node participates in gradient computation.
    pub fn is_grad(&self) -> bool {
        self.inner.requires_grad
    }

    /// Borrows the underlying data.
    pub fn data(&self) -> Ref<'_, Vec<f32>> {
        self.inner.data.borrow()
    }

    /// Copies the underlying data out.
    pub fn to_vec(&self) -> Vec<f32> {
        self.inner.data.borrow().clone()
    }

    /// The value of a scalar tensor.
    ///
    /// # Panics
    /// Panics when the tensor has more than one element.
    pub fn item(&self) -> f32 {
        let d = self.inner.data.borrow();
        assert_eq!(d.len(), 1, "item() on tensor with {} elements", d.len());
        d[0]
    }

    /// Element at `(row, col)` in the matrix view.
    pub fn at(&self, row: usize, col: usize) -> f32 {
        let (_, c) = self.inner.shape.as_matrix();
        self.inner.data.borrow()[row * c + col]
    }

    /// The accumulated gradient, if any.
    pub fn grad(&self) -> Option<Vec<f32>> {
        self.inner.grad.borrow().clone()
    }

    /// Clears the accumulated gradient, recycling its buffer.
    pub fn zero_grad(&self) {
        if let Some(g) = self.inner.grad.borrow_mut().take() {
            crate::pool::give(g);
        }
    }

    /// In-place SGD-style update `data -= lr * delta` used by optimizers.
    ///
    /// # Panics
    /// Panics when `delta.len()` differs from the tensor length.
    pub fn apply_update(&self, delta: &[f32], lr: f32) {
        let mut d = self.inner.data.borrow_mut();
        assert_eq!(d.len(), delta.len());
        for (x, dx) in d.iter_mut().zip(delta) {
            *x -= lr * dx;
        }
    }

    /// Overwrites the tensor contents (used by dataset-dependent buffers).
    ///
    /// # Panics
    /// Panics when the length changes.
    pub fn set_data(&self, new: &[f32]) {
        let mut d = self.inner.data.borrow_mut();
        assert_eq!(d.len(), new.len(), "set_data length mismatch");
        d.copy_from_slice(new);
    }

    /// A stable identifier for deduplicating parameters.
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// Name of the op that produced this node (`"leaf"` for leaves and for
    /// nodes whose graph history was dropped because no input required
    /// gradients).
    pub fn op(&self) -> &'static str {
        self.inner.op
    }

    /// Handles to this node's recorded parents. Empty for leaves and for
    /// nodes built without gradient tracking (the tape only retains parents
    /// when some input requires gradients).
    pub fn parents(&self) -> Vec<Tensor> {
        self.inner.parents.clone()
    }

    /// True for nodes produced by an op with a recorded backward closure.
    pub fn is_op_node(&self) -> bool {
        self.inner.backward.is_some()
    }

    /// Accumulates `g` into this node's gradient buffer.
    pub(crate) fn accumulate_grad(&self, g: &[f32]) {
        let mut slot = self.inner.grad.borrow_mut();
        match slot.as_mut() {
            Some(buf) => {
                debug_assert_eq!(buf.len(), g.len());
                for (b, x) in buf.iter_mut().zip(g) {
                    *b += x;
                }
            }
            None => *slot = Some(crate::pool::take_copy(g)),
        }
    }

    /// Accumulates an owned gradient buffer. When the slot is empty the
    /// buffer is installed directly (no copy); otherwise it is added
    /// elementwise and returned to the pool. Backward closures that build
    /// their gradient in a pooled buffer use this so the buffer is never
    /// dropped on the floor.
    pub(crate) fn accumulate_grad_owned(&self, g: Vec<f32>) {
        let mut slot = self.inner.grad.borrow_mut();
        match slot.as_mut() {
            Some(buf) => {
                debug_assert_eq!(buf.len(), g.len());
                for (b, x) in buf.iter_mut().zip(&g) {
                    *b += x;
                }
                crate::pool::give(g);
            }
            None => *slot = Some(g),
        }
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = self.inner.data.borrow();
        let preview: Vec<f32> = d.iter().take(8).copied().collect();
        write!(
            f,
            "Tensor(shape={}, grad={}, data~{:?}{})",
            self.inner.shape,
            self.inner.requires_grad,
            preview,
            if d.len() > 8 { "…" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_checks_length() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(t.rows(), 2);
        assert_eq!(t.cols(), 3);
        assert_eq!(t.at(1, 2), 6.0);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_rejects_bad_length() {
        let _ = Tensor::from_vec(vec![1.0], &[2, 3]);
    }

    #[test]
    fn requires_grad_marks_leaf() {
        let t = Tensor::zeros(&[3]).requires_grad();
        assert!(t.is_grad());
        assert!(t.grad().is_none());
    }

    #[test]
    fn accumulate_grad_adds() {
        let t = Tensor::zeros(&[2]).requires_grad();
        t.accumulate_grad(&[1.0, 2.0]);
        t.accumulate_grad(&[0.5, 0.5]);
        assert_eq!(t.grad().unwrap(), vec![1.5, 2.5]);
    }

    #[test]
    fn apply_update_subtracts() {
        let t = Tensor::from_vec(vec![1.0, 1.0], &[2]);
        t.apply_update(&[0.5, -0.5], 0.1);
        assert_eq!(t.to_vec(), vec![0.95, 1.05]);
    }

    #[test]
    fn ops_without_grad_do_not_retain_parents() {
        let a = Tensor::ones(&[2, 2]);
        let b = Tensor::ones(&[2, 2]);
        let c = a.add(&b);
        assert!(!c.is_grad());
        assert!(c.inner.parents.is_empty());
    }
}
