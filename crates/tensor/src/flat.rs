//! Flat parameter/gradient buffers and the deterministic tree reduction.
//!
//! The data-parallel trainer never shares tensors across threads (the
//! autograd graph is `Rc`-based and deliberately single-threaded). Instead,
//! worker replicas exchange **plain `Vec<f32>` buffers** with the master:
//! parameters flow worker-ward as one flat snapshot, gradients flow back as
//! one flat buffer per shard, and the master combines shard gradients with
//! [`tree_reduce`] — a *fixed-order* pairwise reduction over shard indices.
//!
//! Because the reduction order depends only on the shard index (never on
//! which worker produced a buffer or when it arrived), the combined gradient
//! is bitwise identical for any thread count; see `DESIGN.md` §10 for the
//! full determinism argument.
//!
//! All functions treat the parameter list as an ordered sequence and
//! concatenate in list order. Callers must pass a deduplicated list (as
//! returned by `SessionModel::parameters` for a well-formed model); a
//! duplicated handle would double-count its gradient slice on import.

use crate::tensor::Tensor;

/// Total number of elements across a parameter list — the length of every
/// flat buffer the other functions in this module produce or consume.
pub fn flat_len(params: &[Tensor]) -> usize {
    params.iter().map(Tensor::len).sum()
}

/// Concatenates every parameter's data into one flat buffer, in list order.
pub fn export_params(params: &[Tensor]) -> Vec<f32> {
    let mut flat = Vec::with_capacity(flat_len(params));
    for p in params {
        flat.extend_from_slice(&p.data());
    }
    flat
}

/// Writes a flat buffer produced by [`export_params`] back into the
/// parameter tensors, in list order.
///
/// # Panics
/// Panics when `flat.len()` differs from [`flat_len`] of `params`.
pub fn import_params(params: &[Tensor], flat: &[f32]) {
    assert_eq!(
        flat.len(),
        flat_len(params),
        "import_params: flat buffer length mismatch"
    );
    let mut offset = 0usize;
    for p in params {
        let n = p.len();
        p.set_data(&flat[offset..offset + n]);
        offset += n;
    }
}

/// Concatenates the accumulated gradients of every parameter, in list order.
/// Parameters with no accumulated gradient contribute zeros, so the result
/// always has length [`flat_len`].
pub fn export_grads(params: &[Tensor]) -> Vec<f32> {
    let mut flat = Vec::with_capacity(flat_len(params));
    for p in params {
        match p.grad() {
            Some(g) => flat.extend_from_slice(&g),
            None => flat.extend(std::iter::repeat_n(0.0, p.len())),
        }
    }
    flat
}

/// Overwrites each parameter's gradient from a flat buffer produced by
/// [`export_grads`] (or a reduction of several such buffers).
///
/// # Panics
/// Panics when `flat.len()` differs from [`flat_len`] of `params`.
pub fn import_grads(params: &[Tensor], flat: &[f32]) {
    assert_eq!(
        flat.len(),
        flat_len(params),
        "import_grads: flat buffer length mismatch"
    );
    let mut offset = 0usize;
    for p in params {
        let n = p.len();
        p.zero_grad();
        p.accumulate_grad_public(&flat[offset..offset + n]);
        offset += n;
    }
}

/// Sums equally sized buffers with a fixed-order pairwise tree reduction.
///
/// Level by level, buffer `2k` absorbs buffer `2k+1` until one remains. The
/// float additions performed — and therefore the rounding — depend only on
/// the *index order* of the input, never on which thread produced a buffer
/// or in which order buffers were finished, which is what makes the
/// data-parallel gradient bitwise reproducible across thread counts.
///
/// # Panics
/// Panics when `buffers` is empty or the buffer lengths disagree.
pub fn tree_reduce(buffers: Vec<Vec<f32>>) -> Vec<f32> {
    assert!(!buffers.is_empty(), "tree_reduce over zero buffers");
    let len = buffers[0].len();
    assert!(
        buffers.iter().all(|b| b.len() == len),
        "tree_reduce: buffer lengths disagree"
    );
    let mut level = buffers;
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        let mut it = level.into_iter();
        while let Some(mut a) = it.next() {
            if let Some(b) = it.next() {
                for (x, y) in a.iter_mut().zip(&b) {
                    *x += y;
                }
            }
            next.push(a);
        }
        level = next;
    }
    match level.into_iter().next() {
        Some(out) => out,
        // `level` shrinks from a non-empty input toward exactly one element.
        None => unreachable!("tree_reduce lost its last buffer"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    fn random_params(rng: &mut Rng) -> Vec<Tensor> {
        let shapes: [&[usize]; 3] = [&[3, 4], &[5], &[2, 2, 2]];
        shapes
            .iter()
            .map(|dims| {
                let n: usize = dims.iter().product();
                let data: Vec<f32> = (0..n).map(|_| rng.uniform_range(-2.0, 2.0)).collect();
                Tensor::from_vec(data, dims).requires_grad()
            })
            .collect()
    }

    #[test]
    fn param_roundtrip_is_bitwise_exact() {
        // seeded-loop property: export → import into zeroed clones → identical bits
        for seed in 0..20u64 {
            let mut rng = Rng::seed_from_u64(seed);
            let params = random_params(&mut rng);
            let flat = export_params(&params);
            assert_eq!(flat.len(), flat_len(&params));
            let fresh: Vec<Tensor> = params
                .iter()
                .map(|p| Tensor::zeros(p.shape().dims()).requires_grad())
                .collect();
            import_params(&fresh, &flat);
            for (a, b) in params.iter().zip(&fresh) {
                let (av, bv) = (a.to_vec(), b.to_vec());
                assert_eq!(
                    av.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    bv.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
                );
            }
        }
    }

    #[test]
    fn grad_roundtrip_is_bitwise_exact() {
        for seed in 0..20u64 {
            let mut rng = Rng::seed_from_u64(1000 + seed);
            let params = random_params(&mut rng);
            // accumulate a random gradient on all but the last parameter
            for p in &params[..params.len() - 1] {
                let g: Vec<f32> = (0..p.len()).map(|_| rng.uniform_range(-1.0, 1.0)).collect();
                p.accumulate_grad_public(&g);
            }
            let flat = export_grads(&params);
            // the grad-less tail exports zeros
            let tail = params[params.len() - 1].len();
            assert!(flat[flat.len() - tail..].iter().all(|&x| x == 0.0));
            let fresh: Vec<Tensor> = params
                .iter()
                .map(|p| Tensor::zeros(p.shape().dims()).requires_grad())
                .collect();
            import_grads(&fresh, &flat);
            let flat2 = export_grads(&fresh);
            assert_eq!(
                flat.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                flat2.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn import_grads_overwrites_stale_gradients() {
        let p = Tensor::zeros(&[3]).requires_grad();
        p.accumulate_grad_public(&[9.0, 9.0, 9.0]);
        import_grads(std::slice::from_ref(&p), &[1.0, 2.0, 3.0]);
        assert_eq!(p.grad(), Some(vec![1.0, 2.0, 3.0]));
    }

    #[test]
    fn tree_reduce_matches_sequential_sum_for_small_inputs() {
        let reduced = tree_reduce(vec![vec![1.0, 2.0], vec![10.0, 20.0], vec![100.0, 200.0]]);
        assert_eq!(reduced, vec![111.0, 222.0]);
    }

    #[test]
    fn tree_reduce_single_buffer_is_identity() {
        let reduced = tree_reduce(vec![vec![1.5, -2.5]]);
        assert_eq!(reduced, vec![1.5, -2.5]);
    }

    #[test]
    fn tree_reduce_is_invariant_to_completion_order() {
        // seeded-loop property: workers finish shards in arbitrary order, but
        // the master slots results by shard index before reducing — so any
        // arrival permutation must produce bitwise identical sums.
        for seed in 0..30u64 {
            let mut rng = Rng::seed_from_u64(2000 + seed);
            let shards = 1 + rng.below(9);
            let len = 1 + rng.below(40);
            let grads: Vec<Vec<f32>> = (0..shards)
                .map(|_| (0..len).map(|_| rng.uniform_range(-3.0, 3.0)).collect())
                .collect();
            let baseline = tree_reduce(grads.clone());
            // simulate out-of-order arrival: shuffle, then slot by index
            let mut arrival: Vec<usize> = (0..shards).collect();
            rng.shuffle(&mut arrival);
            let mut slots: Vec<Option<Vec<f32>>> = vec![None; shards];
            for &idx in &arrival {
                slots[idx] = Some(grads[idx].clone());
            }
            let slotted: Vec<Vec<f32>> = slots.into_iter().flatten().collect();
            let reduced = tree_reduce(slotted);
            assert_eq!(
                baseline.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                reduced.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "seed {seed}: arrival order changed the reduction"
            );
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn import_params_rejects_wrong_length() {
        let p = Tensor::zeros(&[2]).requires_grad();
        import_params(std::slice::from_ref(&p), &[1.0]);
    }

    #[test]
    #[should_panic(expected = "lengths disagree")]
    fn tree_reduce_rejects_ragged_buffers() {
        let _ = tree_reduce(vec![vec![1.0], vec![1.0, 2.0]]);
    }
}
