//! Thread-local buffer pool: a size-bucketed free-list of `Vec<f32>` scratch
//! and storage buffers, recycled across autograd tapes.
//!
//! Every op on the tape used to allocate fresh `Vec<f32>`s for its forward
//! output and backward gradient buffers, so each training batch churned the
//! allocator with the *same* multiset of sizes as the batch before it. The
//! pool closes that loop: [`take_zeroed`]/[`take_reserve`]/[`take_copy`] hand
//! out recycled buffers, and dropping a tensor node (see the `Drop` impl on
//! the tensor `Inner`) returns its data and gradient buffers via [`give`].
//! After a one-batch warmup, steady-state training performs **zero** fresh
//! kernel-buffer allocations (asserted by `tests/alloc_steady_state.rs`).
//!
//! The pool is thread-local, so the data-parallel trainer's worker replicas
//! never contend on it and recycling stays lock-free. Buffers are bucketed by
//! capacity rounded up to a power of two; each bucket retains at most
//! [`MAX_BUCKET_BYTES`] worth of buffers (with per-bucket count clamps) and
//! buffers above [`MAX_POOLED_LEN`] floats are never pooled, so the cache
//! stays bounded while deep graphs — which hold many same-size per-step
//! buffers live at once — still recycle fully.
//!
//! Counters (hits, misses, bytes reused, fresh allocations) are kept in plain
//! thread-local fields — reading them costs nothing and tests can assert on
//! them without cross-test interference — and are mirrored into the
//! `embsr_obs` metrics registry (`tensor.pool_hits`, `tensor.pool_misses`,
//! `tensor.pool_bytes_reused`, `tensor.alloc_count`, `tensor.alloc_bytes`)
//! when metrics are enabled.

use std::cell::RefCell;

/// Byte budget per size bucket: the buffer count cap for a bucket is this
/// budget divided by the bucket's buffer size, so a training graph can
/// recycle thousands of small per-step buffers while only a handful of
/// large ones are retained.
const MAX_BUCKET_BYTES: usize = 1 << 23; // 8 MiB

/// Floor and ceiling on the per-bucket buffer count derived from
/// [`MAX_BUCKET_BYTES`].
const MIN_PER_BUCKET: usize = 4;
const MAX_PER_BUCKET: usize = 4096;

/// Buffers longer than this (in `f32` elements, 64 MiB) bypass the pool.
const MAX_POOLED_LEN: usize = 1 << 24;

/// Number of power-of-two capacity classes (`2^0 ..= 2^24`).
const BUCKETS: usize = 25;

/// Retention cap for one bucket: byte budget over buffer size, clamped.
fn bucket_cap(bucket: usize) -> usize {
    let bytes_per_buf = std::mem::size_of::<f32>() << bucket;
    (MAX_BUCKET_BYTES / bytes_per_buf).clamp(MIN_PER_BUCKET, MAX_PER_BUCKET)
}

/// Point-in-time view of the calling thread's pool counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Buffer requests served from the free-list.
    pub hits: u64,
    /// Buffer requests that fell through to a fresh heap allocation.
    pub misses: u64,
    /// Total bytes handed out from recycled buffers.
    pub bytes_reused: u64,
    /// Fresh heap allocations performed (== misses plus oversize requests).
    pub alloc_count: u64,
    /// Total bytes freshly allocated.
    pub alloc_bytes: u64,
}

struct BufferPool {
    buckets: [Vec<Vec<f32>>; BUCKETS],
    stats: PoolStats,
}

impl BufferPool {
    fn new() -> Self {
        BufferPool {
            buckets: [const { Vec::new() }; BUCKETS],
            stats: PoolStats::default(),
        }
    }
}

thread_local! {
    static POOL: RefCell<BufferPool> = RefCell::new(BufferPool::new());
}

/// Bucket index for a capacity: the power-of-two class that holds `len`.
fn bucket_of(len: usize) -> usize {
    len.max(1).next_power_of_two().trailing_zeros() as usize
}

fn record_fresh(stats: &mut PoolStats, len: usize) {
    stats.alloc_count += 1;
    stats.alloc_bytes += (len * std::mem::size_of::<f32>()) as u64;
    if embsr_obs::metrics::enabled() {
        embsr_obs::metrics::counter("tensor.alloc_count").inc();
        embsr_obs::metrics::counter("tensor.alloc_bytes")
            .add((len * std::mem::size_of::<f32>()) as u64);
    }
}

/// Acquires a buffer with `len` elements and unspecified contents beyond the
/// stated fill. Internal workhorse for the `take_*` entry points.
fn take_raw(len: usize) -> Vec<f32> {
    if len > MAX_POOLED_LEN {
        return POOL
            .try_with(|p| {
                record_fresh(&mut p.borrow_mut().stats, len);
                Vec::with_capacity(len)
            })
            .unwrap_or_else(|_| Vec::with_capacity(len)); // TLS torn down
    }
    let bucket = bucket_of(len);
    POOL.try_with(|p| {
        let mut pool = p.borrow_mut();
        if let Some(buf) = pool.buckets[bucket].pop() {
            pool.stats.hits += 1;
            pool.stats.bytes_reused += (len * std::mem::size_of::<f32>()) as u64;
            if embsr_obs::metrics::enabled() {
                embsr_obs::metrics::counter("tensor.pool_hits").inc();
                embsr_obs::metrics::counter("tensor.pool_bytes_reused")
                    .add((len * std::mem::size_of::<f32>()) as u64);
            }
            buf
        } else {
            pool.stats.misses += 1;
            if embsr_obs::metrics::enabled() {
                embsr_obs::metrics::counter("tensor.pool_misses").inc();
            }
            record_fresh(&mut pool.stats, 1 << bucket);
            Vec::with_capacity(1 << bucket)
        }
    })
    .unwrap_or_else(|_| Vec::with_capacity(len))
}

/// Acquires a zero-filled buffer of exactly `len` elements.
pub(crate) fn take_zeroed(len: usize) -> Vec<f32> {
    let mut buf = take_raw(len);
    buf.clear();
    buf.resize(len, 0.0);
    buf
}

/// Acquires an empty buffer with capacity for at least `len` elements, for
/// `extend`-style fills that never reallocate.
pub(crate) fn take_reserve(len: usize) -> Vec<f32> {
    let mut buf = take_raw(len);
    buf.clear();
    buf
}

/// Acquires a buffer holding a copy of `src`.
pub(crate) fn take_copy(src: &[f32]) -> Vec<f32> {
    let mut buf = take_raw(src.len());
    buf.clear();
    buf.extend_from_slice(src);
    buf
}

/// Acquires a buffer filled from an iterator that yields exactly `len`
/// elements — the pooled replacement for `iter.collect::<Vec<f32>>()`.
pub(crate) fn take_from_iter(len: usize, iter: impl Iterator<Item = f32>) -> Vec<f32> {
    let mut buf = take_raw(len);
    buf.clear();
    buf.extend(iter);
    debug_assert_eq!(buf.len(), len, "take_from_iter length mismatch");
    buf
}

/// RAII wrapper for a pooled buffer owned by a backward closure (saved
/// activations, cached statistics). A plain `Vec` captured by a closure
/// would be freed — not recycled — when the graph node drops its closure;
/// the guard's `Drop` returns the buffer to the pool instead.
pub(crate) struct Guard(Vec<f32>);

/// Wraps a pooled buffer so its storage returns to the pool on drop.
pub(crate) fn guard(buf: Vec<f32>) -> Guard {
    Guard(buf)
}

/// Acquires a guarded copy of `src` (see [`Guard`]).
pub(crate) fn guard_copy(src: &[f32]) -> Guard {
    Guard(take_copy(src))
}

impl std::ops::Deref for Guard {
    type Target = [f32];
    fn deref(&self) -> &[f32] {
        &self.0
    }
}

impl Drop for Guard {
    fn drop(&mut self) {
        give(std::mem::take(&mut self.0));
    }
}

/// Returns a buffer to the calling thread's pool (or frees it when the
/// bucket is full, the buffer is oversize, or thread-local state is gone).
pub(crate) fn give(buf: Vec<f32>) {
    let cap = buf.capacity();
    if cap == 0 || cap > MAX_POOLED_LEN || !cap.is_power_of_two() {
        return; // odd capacities (from_vec inputs, shrunk vecs) are not pooled
    }
    let bucket = bucket_of(cap);
    let _ = POOL.try_with(|p| {
        let mut pool = p.borrow_mut();
        if pool.buckets[bucket].len() < bucket_cap(bucket) {
            pool.buckets[bucket].push(buf);
        }
    });
}

/// Snapshot of the calling thread's pool counters.
pub fn pool_stats() -> PoolStats {
    POOL.try_with(|p| p.borrow().stats).unwrap_or_default()
}

/// Zeroes the calling thread's pool counters (cached buffers are kept).
pub fn reset_pool_stats() {
    let _ = POOL.try_with(|p| p.borrow_mut().stats = PoolStats::default());
}

/// Frees every cached buffer on the calling thread and zeroes the counters.
pub fn clear_pool() {
    let _ = POOL.try_with(|p| {
        let mut pool = p.borrow_mut();
        for b in &mut pool.buckets {
            b.clear();
        }
        pool.stats = PoolStats::default();
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_reuses_buffer() {
        clear_pool();
        let a = take_zeroed(100);
        assert_eq!(a.len(), 100);
        assert_eq!(a.capacity(), 128);
        give(a);
        let before = pool_stats();
        let b = take_zeroed(70); // same power-of-two class as 100
        assert_eq!(b.len(), 70);
        let after = pool_stats();
        assert_eq!(after.hits, before.hits + 1);
        assert_eq!(after.misses, before.misses);
        give(b);
        clear_pool();
    }

    #[test]
    fn zeroed_buffers_are_zero_after_reuse() {
        clear_pool();
        let mut a = take_zeroed(16);
        a.iter_mut().for_each(|x| *x = 7.0);
        give(a);
        let b = take_zeroed(16);
        assert!(b.iter().all(|&x| x == 0.0));
        clear_pool();
    }

    #[test]
    fn reserve_has_capacity_and_copy_matches() {
        clear_pool();
        let r = take_reserve(33);
        assert!(r.is_empty());
        assert!(r.capacity() >= 33);
        let c = take_copy(&[1.0, 2.0, 3.0]);
        assert_eq!(c, vec![1.0, 2.0, 3.0]);
        clear_pool();
    }

    #[test]
    fn buckets_are_bounded() {
        clear_pool();
        let cap = bucket_cap(bucket_of(64));
        for _ in 0..(cap + 10) {
            give(Vec::with_capacity(64));
        }
        // Draining the bucket: at most `cap` hits, then misses.
        reset_pool_stats();
        for _ in 0..(cap + 10) {
            let _ = take_raw(64);
        }
        let s = pool_stats();
        assert_eq!(s.hits, cap as u64);
        assert_eq!(s.misses, 10);
        clear_pool();
    }

    #[test]
    fn bucket_caps_scale_inversely_with_size() {
        // Small buffers: cap hits the count ceiling; large buffers: the
        // byte budget dominates; largest pooled class: the count floor.
        assert_eq!(bucket_cap(0), MAX_PER_BUCKET);
        assert_eq!(bucket_cap(15), MAX_BUCKET_BYTES / (4 << 15));
        assert_eq!(bucket_cap(24), MIN_PER_BUCKET);
    }

    #[test]
    fn odd_capacity_buffers_are_not_pooled() {
        clear_pool();
        give(Vec::with_capacity(100)); // 100 is not a power of two
        reset_pool_stats();
        let _ = take_raw(100);
        assert_eq!(pool_stats().hits, 0);
        clear_pool();
    }
}
