//! Normalizations: row-wise softmax, layer normalization and L2
//! normalization (eq. 15, 19 of the paper and the attention block's LN).

use crate::pool;
use crate::tensor::Tensor;

impl Tensor {
    /// Row-wise softmax of a rank-2 tensor (a rank-1 tensor is treated as a
    /// single row). Numerically stabilized by max subtraction.
    ///
    /// Under `inference_mode` with the simd kernel tier active, dispatches
    /// to the fused single-pass kernel (see `ops::fused`) — epsilon-close,
    /// rank-preserving, no tape or backward-buffer copies. Every other
    /// caller (training, eval, packed-tier serving) stays on the bitwise
    /// three-pass path below.
    pub fn softmax_rows(&self) -> Tensor {
        if super::fused::use_fused_softmax() {
            return self.softmax_rows_fused();
        }
        let (rows, cols) = self.shape().as_matrix();
        let d = self.data();
        let mut out = pool::take_zeroed(rows * cols);
        for r in 0..rows {
            let row = &d[r * cols..(r + 1) * cols];
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for (o, &x) in out[r * cols..(r + 1) * cols].iter_mut().zip(row) {
                *o = (x - max).exp();
                sum += *o;
            }
            for o in &mut out[r * cols..(r + 1) * cols] {
                *o /= sum;
            }
        }
        drop(d);
        let saved = pool::guard_copy(&out);
        let parent = self.clone();
        Tensor::from_op(
            out,
            self.shape().clone(),
            vec![self.clone()],
            "softmax_rows",
            Box::new(move |grad| {
                if parent.is_grad() {
                    // dx_i = y_i * (g_i - sum_j g_j y_j), per row.
                    let mut g = pool::take_zeroed(rows * cols);
                    for r in 0..rows {
                        let y = &saved[r * cols..(r + 1) * cols];
                        let go = &grad[r * cols..(r + 1) * cols];
                        let dot: f32 = y.iter().zip(go).map(|(&a, &b)| a * b).sum();
                        for c in 0..cols {
                            g[r * cols + c] = y[c] * (go[c] - dot);
                        }
                    }
                    parent.accumulate_grad_owned(g);
                }
            }),
        )
    }

    /// Row-wise log-softmax, the numerically stable front half of
    /// cross-entropy.
    pub fn log_softmax_rows(&self) -> Tensor {
        let (rows, cols) = self.shape().as_matrix();
        let d = self.data();
        let mut out = pool::take_zeroed(rows * cols);
        for r in 0..rows {
            let row = &d[r * cols..(r + 1) * cols];
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let logsum = row.iter().map(|&x| (x - max).exp()).sum::<f32>().ln() + max;
            for (o, &x) in out[r * cols..(r + 1) * cols].iter_mut().zip(row) {
                *o = x - logsum;
            }
        }
        drop(d);
        let saved = pool::guard_copy(&out);
        let parent = self.clone();
        Tensor::from_op(
            out,
            self.shape().clone(),
            vec![self.clone()],
            "log_softmax_rows",
            Box::new(move |grad| {
                if parent.is_grad() {
                    // dx = g - softmax(x) * sum(g), per row.
                    let mut g = pool::take_zeroed(rows * cols);
                    for r in 0..rows {
                        let ls = &saved[r * cols..(r + 1) * cols];
                        let go = &grad[r * cols..(r + 1) * cols];
                        let gsum: f32 = go.iter().sum();
                        for c in 0..cols {
                            g[r * cols + c] = go[c] - ls[c].exp() * gsum;
                        }
                    }
                    parent.accumulate_grad_owned(g);
                }
            }),
        )
    }

    /// Row-wise layer normalization (no affine part; compose with learned
    /// gamma/beta in the `nn` crate).
    pub fn layer_norm_rows(&self, eps: f32) -> Tensor {
        let (rows, cols) = self.shape().as_matrix();
        let d = self.data();
        let mut out = pool::take_zeroed(rows * cols);
        let mut inv_stds = pool::take_zeroed(rows);
        for r in 0..rows {
            let row = &d[r * cols..(r + 1) * cols];
            let mean = row.iter().sum::<f32>() / cols as f32;
            let var = row.iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / cols as f32;
            let inv_std = 1.0 / (var + eps).sqrt();
            inv_stds[r] = inv_std;
            for (o, &x) in out[r * cols..(r + 1) * cols].iter_mut().zip(row) {
                *o = (x - mean) * inv_std;
            }
        }
        drop(d);
        let saved_y = pool::guard_copy(&out);
        let inv_stds = pool::guard(inv_stds);
        let parent = self.clone();
        Tensor::from_op(
            out,
            self.shape().clone(),
            vec![self.clone()],
            "layer_norm_rows",
            Box::new(move |grad| {
                if parent.is_grad() {
                    // dx = inv_std / N * (N*g - sum(g) - y * sum(g*y))
                    let n = cols as f32;
                    let mut g = pool::take_zeroed(rows * cols);
                    for r in 0..rows {
                        let y = &saved_y[r * cols..(r + 1) * cols];
                        let go = &grad[r * cols..(r + 1) * cols];
                        let sum_g: f32 = go.iter().sum();
                        let sum_gy: f32 = go.iter().zip(y).map(|(&a, &b)| a * b).sum();
                        let s = inv_stds[r] / n;
                        for c in 0..cols {
                            g[r * cols + c] = s * (n * go[c] - sum_g - y[c] * sum_gy);
                        }
                    }
                    parent.accumulate_grad_owned(g);
                }
            }),
        )
    }

    /// Row-wise L2 normalization `x / max(‖x‖₂, eps)` — the `L2Norm` of the
    /// paper's prediction layer (eq. 19, following NISER).
    pub fn l2_normalize_rows(&self, eps: f32) -> Tensor {
        let (rows, cols) = self.shape().as_matrix();
        let d = self.data();
        let mut out = pool::take_zeroed(rows * cols);
        let mut norms = pool::take_zeroed(rows);
        for r in 0..rows {
            let row = &d[r * cols..(r + 1) * cols];
            let norm = row.iter().map(|&x| x * x).sum::<f32>().sqrt().max(eps);
            norms[r] = norm;
            for (o, &x) in out[r * cols..(r + 1) * cols].iter_mut().zip(row) {
                *o = x / norm;
            }
        }
        drop(d);
        let saved_y = pool::guard_copy(&out);
        let norms = pool::guard(norms);
        let parent = self.clone();
        Tensor::from_op(
            out,
            self.shape().clone(),
            vec![self.clone()],
            "l2_normalize_rows",
            Box::new(move |grad| {
                if parent.is_grad() {
                    // dx = (g - y * (g·y)) / ‖x‖
                    let mut g = pool::take_zeroed(rows * cols);
                    for r in 0..rows {
                        let y = &saved_y[r * cols..(r + 1) * cols];
                        let go = &grad[r * cols..(r + 1) * cols];
                        let dot: f32 = go.iter().zip(y).map(|(&a, &b)| a * b).sum();
                        for c in 0..cols {
                            g[r * cols + c] = (go[c] - y[c] * dot) / norms[r];
                        }
                    }
                    parent.accumulate_grad_owned(g);
                }
            }),
        )
    }

    /// Softmax over a rank-1 tensor (single attention row).
    pub fn softmax(&self) -> Tensor {
        assert_eq!(self.shape().rank(), 1, "softmax() expects rank 1");
        let n = self.len();
        self.reshape(&[1, n]).softmax_rows().reshape(&[n])
    }
}

/// Non-autograd helper: softmax over a plain slice, used by inference-only
/// scorers and the evaluation crate.
pub fn softmax_slice(xs: &mut [f32]) {
    let max = xs.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for x in xs.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    for x in xs.iter_mut() {
        *x /= sum;
    }
}

#[cfg(test)]
mod tests {
    use super::softmax_slice;
    use crate::testing::{assert_close, check_gradient};
    use crate::Tensor;

    #[test]
    fn softmax_rows_sum_to_one() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 1.0, 1.0, 1.0], &[2, 3]);
        let y = a.softmax_rows();
        let v = y.to_vec();
        assert_close(&[v[0] + v[1] + v[2]], &[1.0], 1e-6);
        assert_close(&[v[3], v[4], v[5]], &[1.0 / 3.0; 3], 1e-6);
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let a = Tensor::from_vec(vec![1000.0, 1001.0], &[2]);
        let y = a.softmax().to_vec();
        assert!(y.iter().all(|v| v.is_finite()));
        assert_close(&[y[0] + y[1]], &[1.0], 1e-6);
    }

    #[test]
    fn softmax_gradcheck() {
        let a = Tensor::from_vec(vec![0.1, -0.4, 0.9, 0.3], &[2, 2]).requires_grad();
        check_gradient(
            &a,
            |x| {
                let w = Tensor::from_vec(vec![1.0, -2.0, 0.5, 3.0], &[2, 2]);
                x.softmax_rows().mul(&w).sum()
            },
            1e-3,
            2e-2,
        );
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let a = Tensor::from_vec(vec![0.3, -1.2, 2.2], &[1, 3]);
        let ls = a.log_softmax_rows().to_vec();
        let s = a.softmax_rows().to_vec();
        for (l, p) in ls.iter().zip(s.iter()) {
            assert!((l.exp() - p).abs() < 1e-5);
        }
    }

    #[test]
    fn log_softmax_gradcheck() {
        let a = Tensor::from_vec(vec![0.5, -0.5, 1.0], &[1, 3]).requires_grad();
        check_gradient(
            &a,
            |x| {
                let w = Tensor::from_vec(vec![1.0, 0.0, -1.0], &[1, 3]);
                x.log_softmax_rows().mul(&w).sum()
            },
            1e-3,
            2e-2,
        );
    }

    #[test]
    fn layer_norm_zero_mean_unit_var() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 4]);
        let y = a.layer_norm_rows(1e-5).to_vec();
        let mean: f32 = y.iter().sum::<f32>() / 4.0;
        let var: f32 = y.iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / 4.0;
        assert_close(&[mean], &[0.0], 1e-5);
        assert_close(&[var], &[1.0], 1e-3);
    }

    #[test]
    fn layer_norm_gradcheck() {
        let a = Tensor::from_vec(vec![0.2, 1.4, -0.8, 0.6], &[1, 4]).requires_grad();
        check_gradient(
            &a,
            |x| {
                let w = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 4]);
                x.layer_norm_rows(1e-5).mul(&w).sum()
            },
            1e-3,
            5e-2,
        );
    }

    #[test]
    fn l2_normalize_unit_norm() {
        let a = Tensor::from_vec(vec![3.0, 4.0], &[1, 2]);
        let y = a.l2_normalize_rows(1e-12).to_vec();
        assert_close(&y, &[0.6, 0.8], 1e-6);
    }

    #[test]
    fn l2_normalize_gradcheck() {
        let a = Tensor::from_vec(vec![0.7, -1.1, 0.4], &[1, 3]).requires_grad();
        check_gradient(
            &a,
            |x| {
                let w = Tensor::from_vec(vec![1.0, 2.0, -1.0], &[1, 3]);
                x.l2_normalize_rows(1e-12).mul(&w).sum()
            },
            1e-3,
            2e-2,
        );
    }

    #[test]
    fn softmax_slice_helper() {
        let mut v = vec![0.0, 0.0];
        softmax_slice(&mut v);
        assert_close(&v, &[0.5, 0.5], 1e-6);
    }
}
