//! Elementwise arithmetic with the three broadcast forms the models need:
//! same-shape, matrix-plus-row, and tensor-plus-scalar.

use crate::pool;
use crate::shape::Shape;
use crate::tensor::Tensor;

/// How the right-hand operand broadcasts against the left.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Broadcast {
    /// Identical shapes.
    Same,
    /// `lhs` is `[n, d]`, `rhs` is `[d]` (or `[1, d]`): rhs repeats per row.
    Row,
}

fn classify(lhs: &Tensor, rhs: &Tensor) -> Broadcast {
    if lhs.shape() == rhs.shape() {
        return Broadcast::Same;
    }
    let (lr, lc) = lhs.shape().as_matrix();
    let (rr, rc) = rhs.shape().as_matrix();
    if lc == rc && rr == 1 && lr >= 1 {
        return Broadcast::Row;
    }
    // A row vector viewed as [d] against [n, d].
    if rhs.shape().rank() == 1 && rhs.len() == lc {
        return Broadcast::Row;
    }
    panic!(
        "incompatible shapes for elementwise op: {} vs {}",
        lhs.shape(),
        rhs.shape()
    );
}

/// Reduces a full-size gradient down to a (pooled) row vector by summing
/// over rows.
fn reduce_rows(grad: &[f32], rows: usize, cols: usize) -> Vec<f32> {
    let mut out = pool::take_zeroed(cols);
    for r in 0..rows {
        for c in 0..cols {
            out[c] += grad[r * cols + c];
        }
    }
    out
}

macro_rules! binary_elementwise {
    ($name:ident, $fwd:expr, $dlhs:expr, $drhs:expr, $doc:literal) => {
        #[doc = $doc]
        ///
        /// Supports same-shape operands and `[n, d] ∘ [d]` row broadcasting.
        pub fn $name(&self, rhs: &Tensor) -> Tensor {
            let bc = classify(self, rhs);
            let (rows, cols) = self.shape().as_matrix();
            let a = self.data();
            let b = rhs.data();
            let fwd: fn(f32, f32) -> f32 = $fwd;
            let out = match bc {
                Broadcast::Same => pool::take_from_iter(
                    a.len(),
                    a.iter().zip(b.iter()).map(|(&x, &y)| fwd(x, y)),
                ),
                Broadcast::Row => pool::take_from_iter(
                    rows * cols,
                    (0..rows * cols).map(|i| fwd(a[i], b[i % cols])),
                ),
            };
            drop(a);
            drop(b);
            let lhs_t = self.clone();
            let rhs_t = rhs.clone();
            let shape = self.shape().clone();
            Tensor::from_op(
                out,
                shape,
                vec![self.clone(), rhs.clone()],
                stringify!($name),
                Box::new(move |grad| {
                    let dl: fn(f32, f32, f32) -> f32 = $dlhs;
                    let dr: fn(f32, f32, f32) -> f32 = $drhs;
                    // Shared borrows (not clones): lhs and rhs may alias the
                    // same node (e.g. `x.mul(&x)`), which is fine read-only.
                    let a = lhs_t.data();
                    let b = rhs_t.data();
                    if lhs_t.is_grad() {
                        let g = match bc {
                            Broadcast::Same => pool::take_from_iter(
                                grad.len(),
                                (0..grad.len()).map(|i| dl(a[i], b[i], grad[i])),
                            ),
                            Broadcast::Row => pool::take_from_iter(
                                grad.len(),
                                (0..grad.len()).map(|i| dl(a[i], b[i % cols], grad[i])),
                            ),
                        };
                        lhs_t.accumulate_grad_owned(g);
                    }
                    if rhs_t.is_grad() {
                        let full = match bc {
                            Broadcast::Same => pool::take_from_iter(
                                grad.len(),
                                (0..grad.len()).map(|i| dr(a[i], b[i], grad[i])),
                            ),
                            Broadcast::Row => pool::take_from_iter(
                                grad.len(),
                                (0..grad.len()).map(|i| dr(a[i], b[i % cols], grad[i])),
                            ),
                        };
                        match bc {
                            Broadcast::Same => rhs_t.accumulate_grad_owned(full),
                            Broadcast::Row => {
                                let reduced = reduce_rows(&full, rows, cols);
                                pool::give(full);
                                rhs_t.accumulate_grad_owned(reduced);
                            }
                        }
                    }
                }),
            )
        }
    };
}

impl Tensor {
    binary_elementwise!(
        add,
        |x, y| x + y,
        |_x, _y, g| g,
        |_x, _y, g| g,
        "Elementwise addition."
    );

    binary_elementwise!(
        sub,
        |x, y| x - y,
        |_x, _y, g| g,
        |_x, _y, g| -g,
        "Elementwise subtraction."
    );

    binary_elementwise!(
        mul,
        |x, y| x * y,
        |_x, y, g| g * y,
        |x, _y, g| g * x,
        "Elementwise (Hadamard) product."
    );

    binary_elementwise!(
        div,
        |x, y| x / y,
        |_x, y, g| g / y,
        |x, y, g| -g * x / (y * y),
        "Elementwise division."
    );

    /// Adds a scalar to every element.
    pub fn add_scalar(&self, s: f32) -> Tensor {
        let out = pool::take_from_iter(self.len(), self.data().iter().map(|&x| x + s));
        let parent = self.clone();
        Tensor::from_op(
            out,
            self.shape().clone(),
            vec![self.clone()],
            "add_scalar",
            Box::new(move |grad| {
                if parent.is_grad() {
                    parent.accumulate_grad(grad);
                }
            }),
        )
    }

    /// Multiplies every element by a scalar.
    pub fn mul_scalar(&self, s: f32) -> Tensor {
        let out = pool::take_from_iter(self.len(), self.data().iter().map(|&x| x * s));
        let parent = self.clone();
        Tensor::from_op(
            out,
            self.shape().clone(),
            vec![self.clone()],
            "mul_scalar",
            Box::new(move |grad| {
                if parent.is_grad() {
                    let g = pool::take_from_iter(grad.len(), grad.iter().map(|&g| g * s));
                    parent.accumulate_grad_owned(g);
                }
            }),
        )
    }

    /// Elementwise negation.
    pub fn neg(&self) -> Tensor {
        self.mul_scalar(-1.0)
    }

    /// `1 - x`, a convenience for gate arithmetic `(1 - z) ⊙ a + z ⊙ b`.
    pub fn one_minus(&self) -> Tensor {
        self.mul_scalar(-1.0).add_scalar(1.0)
    }

    /// Reinterprets the tensor with a new shape of identical length.
    ///
    /// # Panics
    /// Panics when the element count changes.
    pub fn reshape(&self, dims: &[usize]) -> Tensor {
        let shape = Shape::new(dims);
        assert_eq!(shape.len(), self.len(), "reshape length mismatch");
        let parent = self.clone();
        Tensor::from_op(
            pool::take_copy(&self.data()),
            shape,
            vec![self.clone()],
            "reshape",
            Box::new(move |grad| {
                if parent.is_grad() {
                    parent.accumulate_grad(grad);
                }
            }),
        )
    }

    /// A detached copy: same values, no graph history, no gradient flow.
    pub fn detach(&self) -> Tensor {
        Tensor::leaf_pooled(pool::take_copy(&self.data()), self.shape().clone(), false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::{assert_close, check_gradient};

    #[test]
    fn add_same_shape() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![3.0, 4.0], &[2]);
        assert_eq!(a.add(&b).to_vec(), vec![4.0, 6.0]);
    }

    #[test]
    fn add_row_broadcast() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![10.0, 20.0], &[2]);
        assert_eq!(a.add(&b).to_vec(), vec![11.0, 22.0, 13.0, 24.0]);
    }

    #[test]
    fn row_broadcast_gradient_sums_over_rows() {
        let b = Tensor::from_vec(vec![1.0, 2.0], &[2]).requires_grad();
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        a.add(&b).sum().backward();
        assert_close(&b.grad().unwrap(), &[2.0, 2.0], 1e-6);
    }

    #[test]
    fn mul_gradcheck() {
        let a = Tensor::from_vec(vec![0.5, -1.5, 2.0], &[3]).requires_grad();
        check_gradient(
            &a,
            |x| {
                let c = Tensor::from_vec(vec![2.0, 3.0, -1.0], &[3]);
                x.mul(&c).mul(x).sum()
            },
            1e-3,
            1e-2,
        );
    }

    #[test]
    fn div_gradcheck() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 4.0], &[3]).requires_grad();
        check_gradient(
            &a,
            |x| {
                let c = Tensor::from_vec(vec![2.0, 4.0, 8.0], &[3]);
                c.div(x).sum()
            },
            1e-3,
            1e-2,
        );
    }

    #[test]
    fn one_minus_matches_definition() {
        let a = Tensor::from_vec(vec![0.25, 0.75], &[2]);
        assert_close(&a.one_minus().to_vec(), &[0.75, 0.25], 1e-6);
    }

    #[test]
    #[should_panic(expected = "incompatible shapes")]
    fn incompatible_shapes_panic() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 2]);
        let _ = a.add(&b);
    }

    #[test]
    fn detach_blocks_gradient() {
        let a = Tensor::from_vec(vec![1.0], &[1]).requires_grad();
        let loss = a.detach().mul_scalar(5.0).sum();
        loss.backward();
        assert!(a.grad().is_none());
    }

    #[test]
    fn reshape_roundtrip_gradient() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[4]).requires_grad();
        a.reshape(&[2, 2]).sum().backward();
        assert_close(&a.grad().unwrap(), &[1.0; 4], 1e-6);
    }
}
