//! Pointwise nonlinearities used by the GRU/GGNN cells, the feed-forward
//! block, and the scorer.

use crate::pool;
use crate::tensor::Tensor;

/// Builds a unary pointwise op whose backward uses the *output* values
/// (convenient for sigmoid/tanh, whose derivatives are cheapest in terms of
/// the output).
fn unary_from_output(
    input: &Tensor,
    op: &'static str,
    fwd: impl Fn(f32) -> f32,
    dydx_from_y: fn(f32) -> f32,
) -> Tensor {
    let out = pool::take_from_iter(input.len(), input.data().iter().map(|&x| fwd(x)));
    let saved = pool::guard_copy(&out);
    let parent = input.clone();
    Tensor::from_op(
        out,
        input.shape().clone(),
        vec![input.clone()],
        op,
        Box::new(move |grad| {
            if parent.is_grad() {
                let g = pool::take_from_iter(
                    grad.len(),
                    grad.iter()
                        .zip(saved.iter())
                        .map(|(&g, &y)| g * dydx_from_y(y)),
                );
                parent.accumulate_grad_owned(g);
            }
        }),
    )
}

impl Tensor {
    /// Logistic sigmoid `σ(x) = 1 / (1 + e^{-x})`.
    pub fn sigmoid(&self) -> Tensor {
        unary_from_output(self, "sigmoid", |x| 1.0 / (1.0 + (-x).exp()), |y| y * (1.0 - y))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&self) -> Tensor {
        unary_from_output(self, "tanh", f32::tanh, |y| 1.0 - y * y)
    }

    /// Rectified linear unit `max(0, x)` (paper eq. 17).
    pub fn relu(&self) -> Tensor {
        unary_from_output(self, "relu", |x| x.max(0.0), |y| if y > 0.0 { 1.0 } else { 0.0 })
    }

    /// Natural exponential.
    pub fn exp(&self) -> Tensor {
        unary_from_output(self, "exp", f32::exp, |y| y)
    }

    /// Natural logarithm. Inputs must be positive.
    pub fn log(&self) -> Tensor {
        let parent = self.clone();
        let saved = pool::guard_copy(&self.data());
        let out = pool::take_from_iter(saved.len(), saved.iter().map(|&x| x.ln()));
        Tensor::from_op(
            out,
            self.shape().clone(),
            vec![self.clone()],
            "log",
            Box::new(move |grad| {
                if parent.is_grad() {
                    let g = pool::take_from_iter(
                        grad.len(),
                        grad.iter().zip(saved.iter()).map(|(&g, &x)| g / x),
                    );
                    parent.accumulate_grad_owned(g);
                }
            }),
        )
    }

    /// Elementwise square root. Inputs must be non-negative.
    pub fn sqrt(&self) -> Tensor {
        unary_from_output(self, "sqrt", f32::sqrt, |y| 0.5 / y)
    }

    /// Elementwise square, a fused `x.mul(x)`.
    pub fn square(&self) -> Tensor {
        let parent = self.clone();
        let saved = pool::guard_copy(&self.data());
        let out = pool::take_from_iter(saved.len(), saved.iter().map(|&x| x * x));
        Tensor::from_op(
            out,
            self.shape().clone(),
            vec![self.clone()],
            "square",
            Box::new(move |grad| {
                if parent.is_grad() {
                    let g = pool::take_from_iter(
                        grad.len(),
                        grad.iter().zip(saved.iter()).map(|(&g, &x)| 2.0 * g * x),
                    );
                    parent.accumulate_grad_owned(g);
                }
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::testing::{assert_close, check_gradient};
    use crate::Tensor;

    #[test]
    fn sigmoid_values() {
        let a = Tensor::from_vec(vec![0.0, 100.0, -100.0], &[3]);
        let y = a.sigmoid().to_vec();
        assert_close(&y, &[0.5, 1.0, 0.0], 1e-5);
    }

    #[test]
    fn sigmoid_gradcheck() {
        let a = Tensor::from_vec(vec![-1.0, 0.0, 0.5, 2.0], &[4]).requires_grad();
        check_gradient(&a, |x| x.sigmoid().sum(), 1e-3, 1e-2);
    }

    #[test]
    fn tanh_gradcheck() {
        let a = Tensor::from_vec(vec![-0.9, 0.1, 1.2], &[3]).requires_grad();
        check_gradient(&a, |x| x.tanh().sum(), 1e-3, 1e-2);
    }

    #[test]
    fn relu_zeroes_negatives_and_their_grads() {
        let a = Tensor::from_vec(vec![-1.0, 2.0], &[2]).requires_grad();
        let y = a.relu();
        assert_eq!(y.to_vec(), vec![0.0, 2.0]);
        y.sum().backward();
        assert_close(&a.grad().unwrap(), &[0.0, 1.0], 1e-6);
    }

    #[test]
    fn exp_log_inverse() {
        let a = Tensor::from_vec(vec![0.5, 1.0, 2.0], &[3]);
        assert_close(&a.exp().log().to_vec(), &a.to_vec(), 1e-5);
    }

    #[test]
    fn log_gradcheck() {
        let a = Tensor::from_vec(vec![0.5, 1.5, 3.0], &[3]).requires_grad();
        check_gradient(&a, |x| x.log().sum(), 1e-3, 1e-2);
    }

    #[test]
    fn sqrt_and_square_gradchecks() {
        let a = Tensor::from_vec(vec![0.7, 1.3, 2.4], &[3]).requires_grad();
        check_gradient(&a, |x| x.sqrt().sum(), 1e-3, 1e-2);
        let b = Tensor::from_vec(vec![-0.7, 1.3, 2.4], &[3]).requires_grad();
        check_gradient(&b, |x| x.square().sum(), 1e-3, 1e-2);
    }
}
