//! Fused ops for the serving hot path.
// `x * -1.0` mirrors the taped `one_minus` op literally so a reader can
// match the fused chain against the op-by-op one (the rounding is the
// same either way — IEEE negation is exact).
#![allow(clippy::neg_multiply)]
//!
//! The fusions here fall into two equivalence contracts:
//!
//! * [`Tensor::normalize_scale_rows`] fuses `l2_normalize_rows(eps)` +
//!   `mul_scalar(scale)` — the `NormalizedScorer` session-side chain — into
//!   one graph node and one data pass. It is **bitwise-identical** to the
//!   two-op chain in both forward and backward (every intermediate rounding
//!   is replicated in the same order), so training and the golden trajectory
//!   can use it directly.
//! * [`fused_softmax_rows`] / the `softmax_rows` inference dispatch is a
//!   single-pass, lane-accumulated softmax that skips the tape bookkeeping
//!   and the backward-buffer copy of the training op. Lane-parallel max is
//!   still exact (`max` is associative and the path never sees NaN), but the
//!   lane-split sum and the multiply-by-reciprocal normalization reassociate
//!   the reduction — **epsilon-bounded**, not bitwise, which is why it only
//!   runs under `inference_mode` *and* the simd kernel tier. `exp` itself
//!   stays a scalar libm call: softmax is a per-row monotone transform, so
//!   metric identity (Hit@20/MRR@20) is preserved by construction, and the
//!   win here is the removed passes and copies, not the transcendental.
//! * [`gru_step_fused`] (and its lockstep-batched sibling
//!   [`gru_step_fused_masked`]) collapses the ten elementwise ops of a GRU
//!   gate chain into one pass. Like `normalize_scale_rows` it is **bitwise**
//!   faithful (every intermediate rounding of the op-by-op chain is
//!   replicated in order), but it has no backward, so it is dispatched on
//!   `inference_mode` alone — safe even for the trainer's evaluation loop,
//!   which sees identical bits either way.
//! * [`gated_update_gates`] / [`gated_update_combine`] (GGNN gated update),
//!   [`gated_blend`] (highway and fusion-gate convex blends), and
//!   [`star_blend`] (star-gate blend, which also skips two rank-one
//!   broadcast GEMMs whose `1.0·x` rows are exact) follow the same
//!   contract as `gru_step_fused`: bitwise-identical forward, no backward,
//!   `inference_mode`-only dispatch.

use crate::ops::kernels::{active_tier, KernelTier};
use crate::pool;
use crate::tensor::Tensor;

/// Lane count for the fused softmax accumulators; eight `f32`s fill one
/// 256-bit register and autovectorize cleanly on every tier-relevant target.
pub const SOFTMAX_LANES: usize = 8;

/// In-place fused softmax over `rows` rows of `cols` contiguous values:
/// lane-parallel max, one exp+accumulate sweep, reciprocal scaling.
pub fn fused_softmax_rows(data: &mut [f32], rows: usize, cols: usize) {
    debug_assert_eq!(data.len(), rows * cols);
    for r in 0..rows {
        fused_softmax_row(&mut data[r * cols..(r + 1) * cols]);
    }
}

fn fused_softmax_row(row: &mut [f32]) {
    // Pass 1: max. Lane-splitting a max is exact — no rounding, order-free.
    let mut lane_max = [f32::NEG_INFINITY; SOFTMAX_LANES];
    let mut chunks = row.chunks_exact(SOFTMAX_LANES);
    for c in chunks.by_ref() {
        for j in 0..SOFTMAX_LANES {
            lane_max[j] = lane_max[j].max(c[j]);
        }
    }
    let mut max = f32::NEG_INFINITY;
    for &v in &lane_max {
        max = max.max(v);
    }
    for &x in chunks.remainder() {
        max = max.max(x);
    }

    // Pass 2: exp and lane-accumulated sum in one sweep over the row.
    let mut lane_sum = [0.0f32; SOFTMAX_LANES];
    let mut chunks = row.chunks_exact_mut(SOFTMAX_LANES);
    for c in chunks.by_ref() {
        for j in 0..SOFTMAX_LANES {
            c[j] = (c[j] - max).exp();
            lane_sum[j] += c[j];
        }
    }
    let mut sum = 0.0f32;
    for &v in &lane_sum {
        sum += v;
    }
    for x in chunks.into_remainder() {
        *x = (*x - max).exp();
        sum += *x;
    }

    // Pass 3: one division, then multiplies (the training op divides per
    // element; the reciprocal is the epsilon-tier trade).
    let inv = 1.0 / sum;
    for x in row.iter_mut() {
        *x *= inv;
    }
}

/// True when `softmax_rows` should take the fused path: tape recording is
/// off *and* the calling thread opted into the simd kernel tier. Keying on
/// `inference_mode` alone would reroute the trainer's evaluation loop and
/// break its bitwise golden trajectory.
pub(crate) fn use_fused_softmax() -> bool {
    crate::inference::is_inference() && active_tier() == KernelTier::Simd
}

impl Tensor {
    /// Inference-only fused softmax; values are epsilon-equivalent to
    /// [`Tensor::softmax_rows`]. Only reachable through the `softmax_rows`
    /// dispatch under [`use_fused_softmax`], so no backward is ever built.
    pub(crate) fn softmax_rows_fused(&self) -> Tensor {
        debug_assert!(
            crate::inference::is_inference(),
            "fused softmax has no backward; it must stay inference-only"
        );
        let (rows, cols) = self.shape().as_matrix();
        let d = self.data();
        let mut out = pool::take_zeroed(rows * cols);
        out.copy_from_slice(&d);
        drop(d);
        fused_softmax_rows(&mut out, rows, cols);
        Tensor::from_op(
            out,
            self.shape().clone(),
            vec![self.clone()],
            "softmax_rows",
            // Unreachable: the dispatch guarantees inference mode, where
            // `from_op` drops parents and never builds a tape node.
            Box::new(move |_grad| {}),
        )
    }

    /// Fused `l2_normalize_rows(eps)` followed by `mul_scalar(scale)`:
    /// `y = scale · x / max(‖x‖₂, eps)` per row, one graph node, one pass.
    ///
    /// Bitwise-identical to the unfused chain: the row norm uses the same
    /// sequential `Σx²` reduction, each element is divided by the norm and
    /// *then* multiplied by `scale` (two roundings, same order), and the
    /// backward materializes `g·scale` first exactly as `mul_scalar`'s
    /// backward would before feeding the normalization gradient. The scorer
    /// swap to this op therefore leaves the golden trajectory unchanged.
    pub fn normalize_scale_rows(&self, eps: f32, scale: f32) -> Tensor {
        let (rows, cols) = self.shape().as_matrix();
        let d = self.data();
        let mut out = pool::take_zeroed(rows * cols);
        let mut y1 = pool::take_zeroed(rows * cols);
        let mut norms = pool::take_zeroed(rows);
        for r in 0..rows {
            let row = &d[r * cols..(r + 1) * cols];
            let norm = row.iter().map(|&x| x * x).sum::<f32>().sqrt().max(eps);
            norms[r] = norm;
            for (c, &x) in row.iter().enumerate() {
                let y = x / norm;
                y1[r * cols + c] = y;
                out[r * cols + c] = y * scale;
            }
        }
        drop(d);
        let saved_y1 = pool::guard(y1);
        let norms = pool::guard(norms);
        let parent = self.clone();
        Tensor::from_op(
            out,
            self.shape().clone(),
            vec![self.clone()],
            "normalize_scale_rows",
            Box::new(move |grad| {
                if parent.is_grad() {
                    // Chain backward, replicated rounding-for-rounding:
                    // g1 = g·scale (mul_scalar), then
                    // dx = (g1 - y1·(g1·y1)) / ‖x‖ (l2_normalize_rows).
                    let mut g = pool::take_zeroed(rows * cols);
                    for r in 0..rows {
                        let y = &saved_y1[r * cols..(r + 1) * cols];
                        let go = &grad[r * cols..(r + 1) * cols];
                        let dot: f32 = go.iter().zip(y).map(|(&a, &b)| (a * scale) * b).sum();
                        for c in 0..cols {
                            g[r * cols + c] = (go[c] * scale - y[c] * dot) / norms[r];
                        }
                    }
                    parent.accumulate_grad_owned(g);
                }
            }),
        )
    }
}

/// Scalar logistic sigmoid, the exact expression of [`Tensor::sigmoid`].
#[inline(always)]
fn sigmoid_scalar(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Fused GRU gate chain for inference:
///
/// ```text
/// r  = σ((gx_r + hu_r) + b_r)
/// z  = σ((gx_z + hu_z) + b_z)
/// n  = tanh((gx_n + r ⊙ hu_n) + b_n)
/// h' = (1 − z) ⊙ n + z ⊙ h
/// ```
///
/// `gx_*` are the input projections `x·W_*`, `hu_*` the recurrent
/// projections `h·U_*` (all `[rows, hidden]`), `b_*` the biases
/// (`[hidden]`, row-broadcast), `h` the previous state.
///
/// Bitwise-identical to the op-by-op chain in `Gru::step_projected`: each
/// line rounds at exactly the points the separate `add`/`mul`/`sigmoid`/
/// `tanh`/`one_minus` ops would (note `1 − z` is computed as
/// `(z · −1) + 1`, mirroring `one_minus`, though both round identically),
/// and Rust never contracts `a*b + c` into an FMA. The win is purely the
/// removed tape bookkeeping and the ~ten intermediate `[1, hidden]`
/// allocations per step — the dominant non-GEMM cost in serving.
///
/// No backward exists, so this must only be called under `inference_mode`;
/// callers dispatch on `is_inference()`.
#[allow(clippy::too_many_arguments)] // mirrors the 10-operand GRU gate chain
pub fn gru_step_fused(
    gx_r: &Tensor,
    gx_z: &Tensor,
    gx_n: &Tensor,
    hu_r: &Tensor,
    hu_z: &Tensor,
    hu_n: &Tensor,
    b_r: &Tensor,
    b_z: &Tensor,
    b_n: &Tensor,
    h: &Tensor,
) -> Tensor {
    gru_step_impl(gx_r, gx_z, gx_n, hu_r, hu_z, hu_n, b_r, b_z, b_n, h, None)
}

/// [`gru_step_fused`] over a batch of independent sequences advancing in
/// lockstep: row `i` of every operand belongs to sequence `i`, and rows with
/// `active[i] == false` (sequences already past their last element) copy the
/// previous state through unchanged. Active rows compute exactly the single-
/// row chain — each output element only ever reads its own row — so batching
/// changes no bits; it exists so a time step costs one `[n, d]`-shaped GEMM
/// per gate instead of `n` one-row GEMMs.
#[allow(clippy::too_many_arguments)] // mirrors the 10-operand GRU gate chain
pub fn gru_step_fused_masked(
    gx_r: &Tensor,
    gx_z: &Tensor,
    gx_n: &Tensor,
    hu_r: &Tensor,
    hu_z: &Tensor,
    hu_n: &Tensor,
    b_r: &Tensor,
    b_z: &Tensor,
    b_n: &Tensor,
    h: &Tensor,
    active: &[bool],
) -> Tensor {
    gru_step_impl(gx_r, gx_z, gx_n, hu_r, hu_z, hu_n, b_r, b_z, b_n, h, Some(active))
}

#[allow(clippy::too_many_arguments)]
fn gru_step_impl(
    gx_r: &Tensor,
    gx_z: &Tensor,
    gx_n: &Tensor,
    hu_r: &Tensor,
    hu_z: &Tensor,
    hu_n: &Tensor,
    b_r: &Tensor,
    b_z: &Tensor,
    b_n: &Tensor,
    h: &Tensor,
    active: Option<&[bool]>,
) -> Tensor {
    debug_assert!(
        crate::inference::is_inference(),
        "fused GRU step has no backward; it must stay inference-only"
    );
    let (rows, cols) = h.shape().as_matrix();
    debug_assert_eq!(gx_r.shape().as_matrix(), (rows, cols));
    debug_assert_eq!(hu_r.shape().as_matrix(), (rows, cols));
    debug_assert_eq!(b_r.len(), cols);
    if let Some(a) = active {
        debug_assert_eq!(a.len(), rows);
    }
    let (gxr, gxz, gxn) = (gx_r.data(), gx_z.data(), gx_n.data());
    let (hur, huz, hun) = (hu_r.data(), hu_z.data(), hu_n.data());
    let (br, bz, bn) = (b_r.data(), b_z.data(), b_n.data());
    let hd = h.data();
    let mut out = pool::take_zeroed(rows * cols);
    for (i, o) in out.iter_mut().enumerate() {
        if let Some(a) = active {
            if !a[i / cols] {
                *o = hd[i];
                continue;
            }
        }
        let j = i % cols;
        let r = sigmoid_scalar((gxr[i] + hur[i]) + br[j]);
        let z = sigmoid_scalar((gxz[i] + huz[i]) + bz[j]);
        let n = ((gxn[i] + r * hun[i]) + bn[j]).tanh();
        *o = ((z * -1.0) + 1.0) * n + z * hd[i];
    }
    drop((gxr, gxz, gxn, hur, huz, hun, br, bz, bn, hd));
    Tensor::from_op(
        out,
        h.shape().clone(),
        vec![gx_r.clone(), gx_z.clone(), gx_n.clone(), h.clone()],
        "gru_step",
        // Unreachable: inference mode drops parents and never builds a tape
        // node, and the debug assertion above keeps the op off taped paths.
        Box::new(move |_grad| {}),
    )
}

/// Fused gate half of the GGNN-style update (paper eq. 8): given the four
/// GEMM outputs `zx = a·W_z`, `zh = e·U_z`, `rx = a·W_r`, `rh = e·U_r` and
/// the previous embeddings `e` (all `[c, d]`), returns
/// `(z, r ⊙ e)` where `z = σ(zx + zh)` and `r = σ(rx + rh)`.
///
/// The update cannot fuse end to end — `r ⊙ e` feeds another GEMM before the
/// candidate — so it splits into this pass and [`gated_update_combine`].
/// Both replicate the op-by-op scalar chains rounding for rounding
/// (**bitwise**, like [`gru_step_fused`]) and have no backward, so they are
/// inference-only.
pub fn gated_update_gates(
    zx: &Tensor,
    zh: &Tensor,
    rx: &Tensor,
    rh: &Tensor,
    prev: &Tensor,
) -> (Tensor, Tensor) {
    debug_assert!(
        crate::inference::is_inference(),
        "fused gated update has no backward; it must stay inference-only"
    );
    let n = prev.len();
    debug_assert!(zx.len() == n && zh.len() == n && rx.len() == n && rh.len() == n);
    let (zxd, zhd, rxd, rhd) = (zx.data(), zh.data(), rx.data(), rh.data());
    let pd = prev.data();
    let mut z_out = pool::take_zeroed(n);
    let mut rp_out = pool::take_zeroed(n);
    for i in 0..n {
        z_out[i] = sigmoid_scalar(zxd[i] + zhd[i]);
        rp_out[i] = sigmoid_scalar(rxd[i] + rhd[i]) * pd[i];
    }
    drop((zxd, zhd, rxd, rhd, pd));
    let z = Tensor::from_op(
        z_out,
        prev.shape().clone(),
        vec![zx.clone(), zh.clone()],
        "gated_update_gates",
        Box::new(move |_grad| {}),
    );
    let rp = Tensor::from_op(
        rp_out,
        prev.shape().clone(),
        vec![rx.clone(), rh.clone(), prev.clone()],
        "gated_update_gates",
        Box::new(move |_grad| {}),
    );
    (z, rp)
}

/// Fused combine half of the GGNN-style update: given `cx = a·W_u`,
/// `ch = (r ⊙ e)·U_u`, the update gate `z` and the previous embeddings `e`
/// (all `[c, d]`), returns `(1 − z) ⊙ e + z ⊙ tanh(cx + ch)` with the exact
/// rounding order of the op chain (`1 − z` as `(z · −1) + 1`). See
/// [`gated_update_gates`].
pub fn gated_update_combine(cx: &Tensor, ch: &Tensor, z: &Tensor, prev: &Tensor) -> Tensor {
    debug_assert!(
        crate::inference::is_inference(),
        "fused gated update has no backward; it must stay inference-only"
    );
    let n = prev.len();
    debug_assert!(cx.len() == n && ch.len() == n && z.len() == n);
    let (cxd, chd, zd) = (cx.data(), ch.data(), z.data());
    let pd = prev.data();
    let mut out = pool::take_zeroed(n);
    for (i, o) in out.iter_mut().enumerate() {
        let cand = (cxd[i] + chd[i]).tanh();
        *o = ((zd[i] * -1.0) + 1.0) * pd[i] + zd[i] * cand;
    }
    drop((cxd, chd, zd, pd));
    Tensor::from_op(
        out,
        prev.shape().clone(),
        vec![cx.clone(), ch.clone(), z.clone(), prev.clone()],
        "gated_update_combine",
        Box::new(move |_grad| {}),
    )
}

/// Fused convex gate blend `g ⊙ a + (1 − g) ⊙ b` over same-shape operands —
/// the highway (eq. 11) and fusion-gate (eq. 18) combine step. Bitwise: the
/// chain `g.mul(a).add(g.one_minus().mul(b))` rounds as `g·a`, `(g·−1)+1`,
/// `om·b`, then the sum, and this pass reproduces exactly that order.
/// Inference-only (no backward).
pub fn gated_blend(g: &Tensor, a: &Tensor, b: &Tensor) -> Tensor {
    debug_assert!(
        crate::inference::is_inference(),
        "fused gated blend has no backward; it must stay inference-only"
    );
    let n = g.len();
    debug_assert!(a.len() == n && b.len() == n);
    let (gd, ad, bd) = (g.data(), a.data(), b.data());
    let mut out = pool::take_zeroed(n);
    for (i, o) in out.iter_mut().enumerate() {
        *o = gd[i] * ad[i] + ((gd[i] * -1.0) + 1.0) * bd[i];
    }
    drop((gd, ad, bd));
    Tensor::from_op(
        out,
        a.shape().clone(),
        vec![g.clone(), a.clone(), b.clone()],
        "gated_blend",
        Box::new(move |_grad| {}),
    )
}

/// Fused star-gate blend (eq. 9): `(1 − α_i) ⊙ sat_i + α_i ⊙ star` with a
/// per-row scalar gate `alpha ∈ [c, 1]` and a shared `star ∈ [d]` row.
///
/// The taped chain materializes `α` and `star` as `[c, d]` via two
/// rank-one GEMMs against `ones` before blending; a `k = 1` GEMM row is
/// `α_i · 1.0` (exact) resp. `1.0 · star_j` (exact), so skipping the
/// materialization and reading `α_i`/`star_j` directly preserves every bit
/// of the blend. Inference-only (no backward).
pub fn star_blend(alpha: &Tensor, satellites: &Tensor, star: &Tensor) -> Tensor {
    debug_assert!(
        crate::inference::is_inference(),
        "fused star blend has no backward; it must stay inference-only"
    );
    let (rows, cols) = satellites.shape().as_matrix();
    debug_assert_eq!(alpha.len(), rows);
    debug_assert_eq!(star.len(), cols);
    let (ad, sd, std_) = (alpha.data(), satellites.data(), star.data());
    let mut out = pool::take_zeroed(rows * cols);
    for (i, o) in out.iter_mut().enumerate() {
        let a = ad[i / cols];
        *o = ((a * -1.0) + 1.0) * sd[i] + a * std_[i % cols];
    }
    drop((ad, sd, std_));
    Tensor::from_op(
        out,
        satellites.shape().clone(),
        vec![alpha.clone(), satellites.clone(), star.clone()],
        "star_blend",
        Box::new(move |_grad| {}),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::check_gradient;
    use crate::{inference_mode, kernels, Rng};

    #[test]
    fn normalize_scale_matches_unfused_chain_bitwise() {
        let mut rng = Rng::seed_from_u64(5);
        for &(rows, cols) in &[(1, 1), (3, 7), (8, 16), (5, 33)] {
            let data: Vec<f32> = (0..rows * cols).map(|_| rng.uniform_range(-2.0, 2.0)).collect();
            let x1 = Tensor::from_vec(data.clone(), &[rows, cols]).requires_grad();
            let x2 = Tensor::from_vec(data, &[rows, cols]).requires_grad();
            let fused = x1.normalize_scale_rows(1e-12, 12.0);
            let chain = x2.l2_normalize_rows(1e-12).mul_scalar(12.0);
            let fb: Vec<u32> = fused.to_vec().iter().map(|v| v.to_bits()).collect();
            let cb: Vec<u32> = chain.to_vec().iter().map(|v| v.to_bits()).collect();
            assert_eq!(fb, cb, "forward diverged at ({rows},{cols})");

            // Identical upstream gradient through an arbitrary weighting.
            let w: Vec<f32> = (0..rows * cols).map(|_| rng.uniform_range(-1.0, 1.0)).collect();
            let wt = Tensor::from_vec(w.clone(), &[rows, cols]);
            fused.mul(&wt).sum().backward();
            chain.mul(&wt).sum().backward();
            let g1: Vec<u32> = x1.grad().unwrap().iter().map(|v| v.to_bits()).collect();
            let g2: Vec<u32> = x2.grad().unwrap().iter().map(|v| v.to_bits()).collect();
            assert_eq!(g1, g2, "backward diverged at ({rows},{cols})");
        }
    }

    #[test]
    fn normalize_scale_gradcheck() {
        let x = Tensor::from_vec(vec![0.7, -1.1, 0.4, 0.2, 0.9, -0.3], &[2, 3]).requires_grad();
        check_gradient(
            &x,
            |x| {
                let w = Tensor::from_vec(vec![1.0, 2.0, -1.0, 0.5, -0.25, 1.5], &[2, 3]);
                x.normalize_scale_rows(1e-12, 12.0).mul(&w).sum()
            },
            1e-3,
            2e-2,
        );
    }

    #[test]
    fn fused_softmax_close_to_training_softmax() {
        let mut rng = Rng::seed_from_u64(23);
        for &(rows, cols) in &[(1, 1), (2, 7), (4, 40), (3, 129)] {
            let data: Vec<f32> = (0..rows * cols).map(|_| rng.uniform_range(-6.0, 6.0)).collect();
            let mut fused = data.clone();
            fused_softmax_rows(&mut fused, rows, cols);
            let reference = Tensor::from_vec(data, &[rows, cols]).softmax_rows().to_vec();
            for (i, (f, e)) in fused.iter().zip(&reference).enumerate() {
                assert!(
                    (f - e).abs() <= 1e-6,
                    "({rows},{cols}) element {i}: {f} vs {e}"
                );
            }
            for r in 0..rows {
                let s: f32 = fused[r * cols..(r + 1) * cols].iter().sum();
                assert!((s - 1.0).abs() <= 1e-5, "row {r} sums to {s}");
            }
        }
    }

    #[test]
    fn fused_softmax_preserves_row_ranking() {
        // Softmax is monotone per row; the fused variant must not reorder
        // any pair (this is what the serving metric-identity gate rests on).
        let mut rng = Rng::seed_from_u64(77);
        let cols = 257;
        let data: Vec<f32> = (0..cols).map(|_| rng.uniform_range(-12.0, 12.0)).collect();
        let mut fused = data.clone();
        fused_softmax_rows(&mut fused, 1, cols);
        let mut order_in: Vec<usize> = (0..cols).collect();
        order_in.sort_by(|&a, &b| data[a].total_cmp(&data[b]));
        let mut order_out: Vec<usize> = (0..cols).collect();
        order_out.sort_by(|&a, &b| fused[a].total_cmp(&fused[b]));
        assert_eq!(order_in, order_out);
    }

    #[test]
    fn softmax_rows_dispatches_to_fused_only_under_simd_inference() {
        let x = Tensor::from_vec(vec![0.3, -1.2, 2.2, 0.0, 1.0, -0.5], &[2, 3]);
        let taped = x.softmax_rows().to_vec();
        // Inference alone (packed tier) must stay on the bitwise path.
        let packed = inference_mode(|| x.softmax_rows()).to_vec();
        for (a, b) in taped.iter().zip(&packed) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Simd tier + inference takes the fused path: epsilon-close.
        let fused = kernels::with_tier(kernels::KernelTier::Simd, || {
            inference_mode(|| x.softmax_rows())
        })
        .to_vec();
        for (a, b) in taped.iter().zip(&fused) {
            assert!((a - b).abs() <= 1e-6);
        }
    }
}
