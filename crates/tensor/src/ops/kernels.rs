//! Packed, register-tiled GEMM micro-kernels and batched matmul.
//!
//! All dense matrix products in the crate funnel into one micro-kernel: an
//! [`MR`]×[`NR`] register tile accumulated over the full reduction dimension
//! before a single store. The three layout variants (`A·B`, `Aᵀ·B`, `A·Bᵀ`)
//! differ only in how operands are *packed* into contiguous panels, never in
//! how they are *accumulated*, which is what makes the layer deterministic:
//!
//! * The B operand is packed once per call into `[reduction][NR]` panels
//!   (zero-padded at the right edge) so the inner loop reads one contiguous
//!   cache line per step.
//! * The A operand is packed per row-strip into `[reduction][MR]` strips
//!   (transposed where needed) so all `MR` lanes load contiguously.
//! * Each of the `MR×NR` accumulators starts at `+0.0` and adds the products
//!   `a[i][p]·b[p][j]` for `p = 0, 1, …, R−1` **strictly in order**, then is
//!   added into the output exactly once.
//!
//! Because the reduction dimension is never blocked, every output element sees
//! the same addition chain as the scalar reference kernels below, bitwise,
//! regardless of `MR`/`NR` or how row/column blocking changes in the future
//! (`tests/kernel_equivalence.rs` asserts this across edge shapes). Products
//! are written `a * b` followed by `+` — no FMA contraction — so the chain
//! matches the reference on every target. This preserves the data-parallel
//! trainer's bitwise thread-invariance guarantee: replica math is a pure
//! function of the batch, independent of blocking and thread count.
//!
//! When [`embsr_obs::profile`] is enabled, the three public entry points
//! additionally record shape-bucketed timings (`gemm_ab`/`gemm_atb`/
//! `gemm_abt` sites). The hooks only read a clock around the unchanged
//! body — one relaxed atomic load when profiling is off, and never a
//! change to the accumulation order either way.

use crate::pool;
use crate::shape::Shape;
use crate::tensor::Tensor;

/// Register-tile height: rows of C accumulated per micro-kernel invocation.
pub const MR: usize = 4;

/// Register-tile width: columns of C accumulated per micro-kernel invocation.
/// Eight `f32` lanes fill one 256-bit vector register.
pub const NR: usize = 8;

/// The innermost tile: `MR` rows × `NR` columns of C held in registers while
/// the entire reduction dimension streams through. `apack` is `[k][MR]`,
/// `bpack` is `[k][NR]`; both are fully packed so every load is contiguous.
/// With `MR`/`NR` constant the two inner loops unroll completely and the `jj`
/// loop vectorizes; the `p` loop stays strictly sequential per accumulator.
#[inline(always)]
fn microkernel(apack: &[f32], bpack: &[f32], k: usize, acc: &mut [[f32; NR]; MR]) {
    debug_assert!(apack.len() >= k * MR);
    debug_assert!(bpack.len() >= k * NR);
    for p in 0..k {
        let ab = &apack[p * MR..p * MR + MR];
        let bb = &bpack[p * NR..p * NR + NR];
        for ii in 0..MR {
            let av = ab[ii];
            let row = &mut acc[ii];
            for jj in 0..NR {
                row[jj] += av * bb[jj];
            }
        }
    }
}

/// Shared driver for all three variants. Logical problem: `out[M,N] +=
/// Σ_p Â[i,p]·B̂[p,j]` with reduction length `r`; the closures materialize
/// `Â`/`B̂` panels from whatever physical layout the variant has. Row/column
/// blocking lives here and is free to change; the reduction is never split.
fn packed_gemm(
    out: &mut [f32],
    m: usize,
    r: usize,
    n: usize,
    pack_b_panel: &dyn Fn(&mut [f32], usize, usize),
    pack_a_strip: &dyn Fn(&mut [f32], usize, usize),
) {
    debug_assert_eq!(out.len(), m * n);
    if m == 0 || n == 0 || r == 0 {
        return;
    }
    let panels = n.div_ceil(NR);
    let mut bpack = pool::take_zeroed(panels * r * NR);
    for panel in 0..panels {
        let j0 = panel * NR;
        let w = NR.min(n - j0);
        pack_b_panel(&mut bpack[panel * r * NR..(panel + 1) * r * NR], j0, w);
    }
    let mut apack = pool::take_zeroed(r * MR);
    let mut i0 = 0;
    while i0 < m {
        let mr = MR.min(m - i0);
        pack_a_strip(&mut apack, i0, mr);
        for panel in 0..panels {
            let j0 = panel * NR;
            let w = NR.min(n - j0);
            let bp = &bpack[panel * r * NR..(panel + 1) * r * NR];
            let mut acc = [[0.0f32; NR]; MR];
            microkernel(&apack, bp, r, &mut acc);
            for ii in 0..mr {
                let crow = &mut out[(i0 + ii) * n + j0..(i0 + ii) * n + j0 + w];
                for (c, &v) in crow.iter_mut().zip(acc[ii].iter()) {
                    *c += v;
                }
            }
        }
        i0 += MR;
    }
    pool::give(apack);
    pool::give(bpack);
}

/// `C[m,n] += A[m,k] · B[k,n]` via the packed micro-kernel.
pub fn gemm_ab(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    // Timing only — the kernel body is untouched, so the bitwise
    // equivalence suites hold with profiling on or off.
    let watch = embsr_obs::profile::enabled().then(embsr_obs::Stopwatch::start);
    packed_gemm(
        out,
        m,
        k,
        n,
        &|dst, j0, w| {
            for p in 0..k {
                dst[p * NR..p * NR + w].copy_from_slice(&b[p * n + j0..p * n + j0 + w]);
            }
        },
        &|dst, i0, mr| {
            for ii in 0..mr {
                let row = &a[(i0 + ii) * k..(i0 + ii + 1) * k];
                for (p, &v) in row.iter().enumerate() {
                    dst[p * MR + ii] = v;
                }
            }
            for ii in mr..MR {
                for p in 0..k {
                    dst[p * MR + ii] = 0.0;
                }
            }
        },
    );
    if let Some(w) = watch {
        embsr_obs::profile::record("gemm_ab", m, k, n, w.elapsed_us(), (2 * m * k * n) as u64);
    }
}

/// `C[m,n] += Aᵀ · B[k,n]` where `a` is stored as `[k, m]`.
pub fn gemm_atb(a: &[f32], b: &[f32], out: &mut [f32], k: usize, m: usize, n: usize) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    let watch = embsr_obs::profile::enabled().then(embsr_obs::Stopwatch::start);
    packed_gemm(
        out,
        m,
        k,
        n,
        &|dst, j0, w| {
            for p in 0..k {
                dst[p * NR..p * NR + w].copy_from_slice(&b[p * n + j0..p * n + j0 + w]);
            }
        },
        &|dst, i0, mr| {
            for p in 0..k {
                dst[p * MR..p * MR + mr].copy_from_slice(&a[p * m + i0..p * m + i0 + mr]);
                for ii in mr..MR {
                    dst[p * MR + ii] = 0.0;
                }
            }
        },
    );
    if let Some(w) = watch {
        embsr_obs::profile::record("gemm_atb", m, k, n, w.elapsed_us(), (2 * m * k * n) as u64);
    }
}

/// `C[m,kb] += A[m,n] · Bᵀ` where `b` is stored as `[kb, n]`; the reduction
/// runs over `n`. Transpose-packing B turns the old scalar dot product into
/// the same vectorized `NR`-lane tile as the other variants.
pub fn gemm_abt(a: &[f32], b: &[f32], out: &mut [f32], m: usize, n: usize, kb: usize) {
    debug_assert_eq!(a.len(), m * n);
    debug_assert_eq!(b.len(), kb * n);
    let watch = embsr_obs::profile::enabled().then(embsr_obs::Stopwatch::start);
    packed_gemm(
        out,
        m,
        n,
        kb,
        &|dst, j0, w| {
            for jj in 0..w {
                let row = &b[(j0 + jj) * n..(j0 + jj + 1) * n];
                for (p, &v) in row.iter().enumerate() {
                    dst[p * NR + jj] = v;
                }
            }
        },
        &|dst, i0, mr| {
            for ii in 0..mr {
                let row = &a[(i0 + ii) * n..(i0 + ii + 1) * n];
                for (p, &v) in row.iter().enumerate() {
                    dst[p * MR + ii] = v;
                }
            }
            for ii in mr..MR {
                for p in 0..n {
                    dst[p * MR + ii] = 0.0;
                }
            }
        },
    );
    if let Some(w) = watch {
        embsr_obs::profile::record("gemm_abt", m, n, kb, w.elapsed_us(), (2 * m * n * kb) as u64);
    }
}

/// Straightforward scalar reference for [`gemm_ab`]: per output element, one
/// `+0.0`-seeded accumulator over `p` in ascending order, added into `out`
/// once. The packed kernels must match this bitwise.
pub fn reference_gemm_ab(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a[i * k + p] * b[p * n + j];
            }
            out[i * n + j] += acc;
        }
    }
}

/// Scalar reference for [`gemm_atb`] (`a` stored `[k, m]`).
pub fn reference_gemm_atb(a: &[f32], b: &[f32], out: &mut [f32], k: usize, m: usize, n: usize) {
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a[p * m + i] * b[p * n + j];
            }
            out[i * n + j] += acc;
        }
    }
}

/// Scalar reference for [`gemm_abt`] (`b` stored `[kb, n]`, reduction over `n`).
pub fn reference_gemm_abt(a: &[f32], b: &[f32], out: &mut [f32], m: usize, n: usize, kb: usize) {
    for i in 0..m {
        for j in 0..kb {
            let mut acc = 0.0f32;
            for p in 0..n {
                acc += a[i * n + p] * b[j * n + p];
            }
            out[i * kb + j] += acc;
        }
    }
}

impl Tensor {
    /// Batched matrix product: `[b,m,k] · [b,k,n] → [b,m,n]`, one packed
    /// kernel call per batch entry. Collapses the per-head / per-step matmul
    /// loops in the attention and recurrent layers into a single graph node.
    ///
    /// # Panics
    /// Panics on rank ≠ 3 or mismatched batch/inner dimensions.
    pub fn bmm(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape().rank(), 3, "bmm lhs must be rank 3");
        assert_eq!(rhs.shape().rank(), 3, "bmm rhs must be rank 3");
        let (b, m, k) = (self.shape().dims()[0], self.shape().dims()[1], self.shape().dims()[2]);
        let (b2, k2, n) = (rhs.shape().dims()[0], rhs.shape().dims()[1], rhs.shape().dims()[2]);
        assert_eq!(b, b2, "bmm batch dims: {} vs {}", b, b2);
        assert_eq!(k, k2, "bmm inner dims: {} vs {}", k, k2);

        if embsr_obs::metrics::enabled() {
            embsr_obs::metrics::counter("tensor.matmul_flops").add((2 * b * m * k * n) as u64);
        }
        let mut out = pool::take_zeroed(b * m * n);
        {
            let lhs = self.data();
            let rhsd = rhs.data();
            for bi in 0..b {
                gemm_ab(
                    &lhs[bi * m * k..(bi + 1) * m * k],
                    &rhsd[bi * k * n..(bi + 1) * k * n],
                    &mut out[bi * m * n..(bi + 1) * m * n],
                    m,
                    k,
                    n,
                );
            }
        }

        let lhs_t = self.clone();
        let rhs_t = rhs.clone();
        Tensor::from_op(
            out,
            Shape::new(&[b, m, n]),
            vec![self.clone(), rhs.clone()],
            "bmm",
            Box::new(move |grad| {
                // dA[b] = dC[b]·B[b]ᵀ ; dB[b] = A[b]ᵀ·dC[b]
                if lhs_t.is_grad() {
                    let mut da = pool::take_zeroed(b * m * k);
                    let rd = rhs_t.data();
                    for bi in 0..b {
                        gemm_abt(
                            &grad[bi * m * n..(bi + 1) * m * n],
                            &rd[bi * k * n..(bi + 1) * k * n],
                            &mut da[bi * m * k..(bi + 1) * m * k],
                            m,
                            n,
                            k,
                        );
                    }
                    drop(rd);
                    lhs_t.accumulate_grad_owned(da);
                }
                if rhs_t.is_grad() {
                    let mut db = pool::take_zeroed(b * k * n);
                    let ld = lhs_t.data();
                    for bi in 0..b {
                        gemm_atb(
                            &ld[bi * m * k..(bi + 1) * m * k],
                            &grad[bi * m * n..(bi + 1) * m * n],
                            &mut db[bi * k * n..(bi + 1) * k * n],
                            m,
                            k,
                            n,
                        );
                    }
                    drop(ld);
                    rhs_t.accumulate_grad_owned(db);
                }
            }),
        )
    }

    /// Batched matrix product with a transposed right operand:
    /// `[b,m,k] · [b,n,k]ᵀ → [b,m,n]`. The attention score pass
    /// (`Q·Kᵀ`) uses this to avoid materializing transposed key matrices.
    ///
    /// # Panics
    /// Panics on rank ≠ 3 or mismatched batch/inner dimensions.
    pub fn bmm_nt(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape().rank(), 3, "bmm_nt lhs must be rank 3");
        assert_eq!(rhs.shape().rank(), 3, "bmm_nt rhs must be rank 3");
        let (b, m, k) = (self.shape().dims()[0], self.shape().dims()[1], self.shape().dims()[2]);
        let (b2, n, k2) = (rhs.shape().dims()[0], rhs.shape().dims()[1], rhs.shape().dims()[2]);
        assert_eq!(b, b2, "bmm_nt batch dims: {} vs {}", b, b2);
        assert_eq!(k, k2, "bmm_nt inner dims: {} vs {}", k, k2);

        if embsr_obs::metrics::enabled() {
            embsr_obs::metrics::counter("tensor.matmul_flops").add((2 * b * m * k * n) as u64);
        }
        let mut out = pool::take_zeroed(b * m * n);
        {
            let lhs = self.data();
            let rhsd = rhs.data();
            for bi in 0..b {
                gemm_abt(
                    &lhs[bi * m * k..(bi + 1) * m * k],
                    &rhsd[bi * n * k..(bi + 1) * n * k],
                    &mut out[bi * m * n..(bi + 1) * m * n],
                    m,
                    k,
                    n,
                );
            }
        }

        let lhs_t = self.clone();
        let rhs_t = rhs.clone();
        Tensor::from_op(
            out,
            Shape::new(&[b, m, n]),
            vec![self.clone(), rhs.clone()],
            "bmm_nt",
            Box::new(move |grad| {
                // C[b] = A[b]·B[b]ᵀ ⇒ dA[b] = dC[b]·B[b] ; dB[b] = dC[b]ᵀ·A[b]
                if lhs_t.is_grad() {
                    let mut da = pool::take_zeroed(b * m * k);
                    let rd = rhs_t.data();
                    for bi in 0..b {
                        gemm_ab(
                            &grad[bi * m * n..(bi + 1) * m * n],
                            &rd[bi * n * k..(bi + 1) * n * k],
                            &mut da[bi * m * k..(bi + 1) * m * k],
                            m,
                            n,
                            k,
                        );
                    }
                    drop(rd);
                    lhs_t.accumulate_grad_owned(da);
                }
                if rhs_t.is_grad() {
                    let mut db = pool::take_zeroed(b * n * k);
                    let ld = lhs_t.data();
                    for bi in 0..b {
                        gemm_atb(
                            &grad[bi * m * n..(bi + 1) * m * n],
                            &ld[bi * m * k..(bi + 1) * m * k],
                            &mut db[bi * n * k..(bi + 1) * n * k],
                            m,
                            n,
                            k,
                        );
                    }
                    drop(ld);
                    rhs_t.accumulate_grad_owned(db);
                }
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::{assert_close, check_gradient};
    use crate::Rng;

    fn rand_vec(rng: &mut Rng, n: usize) -> Vec<f32> {
        (0..n).map(|_| rng.uniform_range(-1.0, 1.0)).collect()
    }

    #[test]
    fn gemm_ab_matches_reference_bitwise() {
        let mut rng = Rng::seed_from_u64(42);
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 7), (4, 8, 8), (5, 9, 11), (13, 32, 17)] {
            let a = rand_vec(&mut rng, m * k);
            let b = rand_vec(&mut rng, k * n);
            let mut packed = vec![0.0; m * n];
            let mut reference = vec![0.0; m * n];
            gemm_ab(&a, &b, &mut packed, m, k, n);
            reference_gemm_ab(&a, &b, &mut reference, m, k, n);
            let pb: Vec<u32> = packed.iter().map(|x| x.to_bits()).collect();
            let rb: Vec<u32> = reference.iter().map(|x| x.to_bits()).collect();
            assert_eq!(pb, rb, "gemm_ab diverged at ({m},{k},{n})");
        }
    }

    #[test]
    fn bmm_matches_per_batch_matmul() {
        let mut rng = Rng::seed_from_u64(7);
        let (b, m, k, n) = (3, 4, 5, 6);
        let a = Tensor::from_vec(rand_vec(&mut rng, b * m * k), &[b, m, k]);
        let w = Tensor::from_vec(rand_vec(&mut rng, b * k * n), &[b, k, n]);
        let out = a.bmm(&w);
        assert_eq!(out.shape().dims(), &[b, m, n]);
        let ad = a.data();
        let wd = w.data();
        for bi in 0..b {
            let am = Tensor::from_vec(ad[bi * m * k..(bi + 1) * m * k].to_vec(), &[m, k]);
            let wm = Tensor::from_vec(wd[bi * k * n..(bi + 1) * k * n].to_vec(), &[k, n]);
            let expect = am.matmul(&wm);
            assert_close(
                &out.to_vec()[bi * m * n..(bi + 1) * m * n],
                &expect.to_vec(),
                0.0,
            );
        }
    }

    #[test]
    fn bmm_nt_matches_manual_transpose() {
        let mut rng = Rng::seed_from_u64(11);
        let (b, m, k, n) = (2, 3, 4, 5);
        let a = Tensor::from_vec(rand_vec(&mut rng, b * m * k), &[b, m, k]);
        let w = Tensor::from_vec(rand_vec(&mut rng, b * n * k), &[b, n, k]);
        let out = a.bmm_nt(&w);
        let ad = a.data();
        let wd = w.data();
        for bi in 0..b {
            let am = Tensor::from_vec(ad[bi * m * k..(bi + 1) * m * k].to_vec(), &[m, k]);
            let wm = Tensor::from_vec(wd[bi * n * k..(bi + 1) * n * k].to_vec(), &[n, k]);
            let expect = am.matmul(&wm.transpose());
            assert_close(
                &out.to_vec()[bi * m * n..(bi + 1) * m * n],
                &expect.to_vec(),
                1e-6,
            );
        }
    }

    #[test]
    fn bmm_gradcheck_both_sides() {
        let mut rng = Rng::seed_from_u64(1337);
        let (b, m, k, n) = (2, 2, 3, 2);
        let lhs = Tensor::from_vec(rand_vec(&mut rng, b * m * k), &[b, m, k]).requires_grad();
        let fixed_r = Tensor::from_vec(rand_vec(&mut rng, b * k * n), &[b, k, n]);
        check_gradient(&lhs, |x| x.bmm(&fixed_r).sum(), 1e-3, 1e-2);

        let rhs = Tensor::from_vec(rand_vec(&mut rng, b * k * n), &[b, k, n]).requires_grad();
        let fixed_l = Tensor::from_vec(rand_vec(&mut rng, b * m * k), &[b, m, k]);
        check_gradient(&rhs, |x| fixed_l.bmm(x).sum(), 1e-3, 1e-2);
    }

    #[test]
    fn bmm_nt_gradcheck_both_sides() {
        let mut rng = Rng::seed_from_u64(1337);
        let (b, m, k, n) = (2, 3, 2, 2);
        let lhs = Tensor::from_vec(rand_vec(&mut rng, b * m * k), &[b, m, k]).requires_grad();
        let fixed_r = Tensor::from_vec(rand_vec(&mut rng, b * n * k), &[b, n, k]);
        check_gradient(&lhs, |x| x.bmm_nt(&fixed_r).sum(), 1e-3, 1e-2);

        let rhs = Tensor::from_vec(rand_vec(&mut rng, b * n * k), &[b, n, k]).requires_grad();
        let fixed_l = Tensor::from_vec(rand_vec(&mut rng, b * m * k), &[b, m, k]);
        check_gradient(&rhs, |x| fixed_l.bmm_nt(x).sum(), 1e-3, 1e-2);
    }
}
