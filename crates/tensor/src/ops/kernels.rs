//! Packed, register-tiled GEMM micro-kernels, the vectorized serving tier,
//! and batched matmul.
//!
//! All dense matrix products in the crate funnel into one of two micro-kernel
//! shapes: an [`MR`]×[`NR`] register tile accumulated over the full reduction
//! dimension before a single store (the **packed** tier, bitwise-pinned to
//! the scalar reference), or a wider [`SIMD_MR`]×[`SIMD_NR`] lane-shaped tile
//! using fused multiply-add (the **simd** tier, epsilon-equivalent). The
//! three layout variants (`A·B`, `Aᵀ·B`, `A·Bᵀ`) differ only in how operands
//! are *packed* into contiguous panels, never in how they are *accumulated*:
//!
//! * The B operand is packed once per call into `[reduction][tile-width]`
//!   panels (zero-padded at the right edge) so the inner loop reads one
//!   contiguous cache line per step.
//! * The A operand is packed per row-strip into `[reduction][tile-height]`
//!   strips (transposed where needed) so all tile rows load contiguously.
//! * Each accumulator starts at `+0.0` and adds the products `a[i][p]·b[p][j]`
//!   for `p = 0, 1, …, R−1` **strictly in order**, then is added into the
//!   output exactly once.
//!
//! # Kernel tiers and their equivalence contracts
//!
//! | tier     | inner loop                    | contract vs scalar reference |
//! |----------|-------------------------------|------------------------------|
//! | `scalar` | naive `ijp` reference loops   | **is** the reference         |
//! | `packed` | `MR×NR` tile, `a*b` then `+`  | bitwise-equal                |
//! | `simd`   | `SIMD_MR×SIMD_NR` tile, FMA   | epsilon-bounded              |
//!
//! The packed tier never uses FMA contraction, so every output element sees
//! the same addition chain as the scalar reference kernels below, bitwise,
//! regardless of blocking (`tests/kernel_equivalence.rs` asserts this across
//! edge shapes). This preserves the data-parallel trainer's bitwise
//! thread-invariance guarantee: replica math is a pure function of the batch.
//!
//! The simd tier trades that pin for throughput: accumulators are kept in
//! `[f32; SIMD_NR]` lane arrays the compiler autovectorizes (the crate builds
//! with `target-cpu=native`, see `.cargo/config.toml`), and each lane update
//! is a [`f32::mul_add`] that lowers to one hardware FMA instruction. FMA
//! rounds once instead of twice, so simd results differ from the reference
//! chain by a bounded epsilon — but they are still *deterministic*: IEEE-754
//! defines FMA exactly, and the source fixes the accumulation order, so any
//! two FMA-capable hosts produce identical bits. Everything stays safe Rust
//! — the `no-unsafe-ratchet` lint keeps the crate at zero `unsafe` — with
//! explicit `std::arch` intrinsics documented as future work if
//! autovectorization ever stops clearing the bench gates.
//!
//! Tier selection is a thread-local ([`with_tier`]/[`active_tier`]) that
//! **defaults to [`KernelTier::Packed`]**, so training and its golden
//! trajectory never change; only serving entry points (`FrozenModel`, the
//! engine workers, the net replicas) opt into the simd tier. The tier is
//! deliberately *not* keyed on `inference_mode`: the trainer's evaluation
//! loop also runs under `inference_mode` and must stay bitwise.
//!
//! When [`embsr_obs::profile`] is enabled, the three public entry points
//! additionally record shape-bucketed timings under tier-tagged sites
//! (`gemm_ab[packed]`, `gemm_ab[simd]`, …) so busiest-first reports attribute
//! time per kernel tier. The hooks only read a clock around the unchanged
//! body — one relaxed atomic load when profiling is off, and never a change
//! to the accumulation order either way.

use std::cell::Cell;

use crate::pool;
use crate::shape::Shape;
use crate::tensor::Tensor;

/// Register-tile height: rows of C accumulated per micro-kernel invocation.
pub const MR: usize = 4;

/// Register-tile width: columns of C accumulated per micro-kernel invocation.
/// Eight `f32` lanes fill one 256-bit vector register.
pub const NR: usize = 8;

/// Simd-tier register-tile height.
pub const SIMD_MR: usize = 4;

/// Simd-tier register-tile width: 32 `f32` lanes span two 512-bit (or four
/// 256-bit) vector registers per C row, wide enough to hide FMA latency.
pub const SIMD_NR: usize = 32;

// ---------------------------------------------------------------------------
// Tier selection
// ---------------------------------------------------------------------------

/// Which GEMM implementation the dispatching entry points
/// ([`gemm_ab`]/[`gemm_atb`]/[`gemm_abt`]) route to on the calling thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelTier {
    /// Naive reference loops. Slow; the correctness oracle.
    Scalar,
    /// Packed register-tiled kernels, bitwise-equal to [`KernelTier::Scalar`].
    /// The default — all training runs here.
    Packed,
    /// Lane-shaped FMA kernels, epsilon-equivalent to the reference.
    /// Serving-only.
    Simd,
}

impl KernelTier {
    /// Stable lower-case name, used in profile sites, manifests and benches.
    pub fn name(self) -> &'static str {
        match self {
            KernelTier::Scalar => "scalar",
            KernelTier::Packed => "packed",
            KernelTier::Simd => "simd",
        }
    }

    /// Parses a tier name as produced by [`KernelTier::name`].
    pub fn parse(s: &str) -> Option<KernelTier> {
        match s {
            "scalar" => Some(KernelTier::Scalar),
            "packed" => Some(KernelTier::Packed),
            "simd" => Some(KernelTier::Simd),
            _ => None,
        }
    }
}

thread_local! {
    static TIER: Cell<KernelTier> = const { Cell::new(KernelTier::Packed) };
}

/// RAII restorer so the tier survives panics and nests correctly.
struct RestoreTier(KernelTier);

impl Drop for RestoreTier {
    fn drop(&mut self) {
        let _ = TIER.try_with(|t| t.set(self.0));
    }
}

/// Runs `f` with the dispatching GEMM entry points routed to `tier` on the
/// calling thread. Nested calls are fine; the previous tier is restored
/// (even on panic) when the scope exits.
pub fn with_tier<R>(tier: KernelTier, f: impl FnOnce() -> R) -> R {
    let prev = TIER.with(|t| t.replace(tier));
    let _restore = RestoreTier(prev);
    f()
}

/// The tier the calling thread currently dispatches to
/// ([`KernelTier::Packed`] unless inside [`with_tier`]).
pub fn active_tier() -> KernelTier {
    TIER.try_with(Cell::get).unwrap_or(KernelTier::Packed)
}

/// Effective `f32` SIMD lane width the crate was compiled for, recorded in
/// run manifests so results are attributable to the vector ISA in use.
pub fn simd_lanes() -> usize {
    if cfg!(target_feature = "avx512f") {
        16
    } else if cfg!(target_feature = "avx") {
        8
    } else if cfg!(any(target_feature = "sse2", target_feature = "neon")) {
        4
    } else {
        1
    }
}

/// True when [`f32::mul_add`] lowers to a single hardware instruction on
/// this build. Without it the simd tier falls back to `a*b + c` (two
/// roundings) rather than paying for a ~15× slower soft-float fused multiply.
pub fn has_hardware_fma() -> bool {
    cfg!(any(target_feature = "fma", target_feature = "neon"))
}

/// One lane update of the simd tier. The branch is a compile-time constant,
/// so this folds to either a hardware FMA or a plain multiply-add.
#[inline(always)]
fn fmadd(a: f32, b: f32, c: f32) -> f32 {
    if cfg!(any(target_feature = "fma", target_feature = "neon")) {
        a.mul_add(b, c)
    } else {
        a * b + c
    }
}

// ---------------------------------------------------------------------------
// Micro-kernels
// ---------------------------------------------------------------------------

/// The packed-tier innermost tile: `MR` rows × `NR` columns of C held in
/// registers while the entire reduction dimension streams through. `apack` is
/// `[k][MR]`, `bpack` is `[k][NR]`; both are fully packed so every load is
/// contiguous. With `MR`/`NR` constant the two inner loops unroll completely
/// and the `jj` loop vectorizes; the `p` loop stays strictly sequential per
/// accumulator, and products are written `a * b` followed by `+` — no FMA
/// contraction — so the chain matches the scalar reference bitwise.
#[inline(always)]
fn microkernel(apack: &[f32], bpack: &[f32], k: usize, acc: &mut [[f32; NR]; MR]) {
    debug_assert!(apack.len() >= k * MR);
    debug_assert!(bpack.len() >= k * NR);
    for p in 0..k {
        let ab = &apack[p * MR..p * MR + MR];
        let bb = &bpack[p * NR..p * NR + NR];
        for ii in 0..MR {
            let av = ab[ii];
            let row = &mut acc[ii];
            for jj in 0..NR {
                row[jj] += av * bb[jj];
            }
        }
    }
}

/// The simd-tier innermost tile: same structure as [`microkernel`] but with
/// `SIMD_NR`-wide lane rows updated through [`fmadd`]. The reduction order is
/// still fixed by the source, so the result is deterministic on any given
/// build; only the single-rounding FMA separates it from the reference chain
/// (epsilon-bounded, asserted in tests).
///
/// `inline(never)`: every layout variant must run the *same* machine code.
/// Inlined into each `gemm_*_simd` wrapper, the copies optimize separately
/// and some spill the accumulator tile mid-reduction — measured as a ~1.5×
/// throughput spread between variants with identical logical work. One
/// out-of-line copy costs a call per tile (one per ~16K FMAs) and pins the
/// register allocation for all callers.
#[inline(never)]
fn microkernel_simd(apack: &[f32], bpack: &[f32], k: usize, acc: &mut [[f32; SIMD_NR]; SIMD_MR]) {
    debug_assert!(apack.len() >= k * SIMD_MR);
    debug_assert!(bpack.len() >= k * SIMD_NR);
    // Accumulate into a local tile and iterate with `chunks_exact` instead of
    // indexed slicing: with no panic edge inside the loop and no observable
    // `&mut` memory, the accumulator stays in vector registers for the whole
    // reduction and is stored exactly once. The indexed form forced a store
    // after *every* FMA (the unwind path keeps `acc` memory current), which
    // halved throughput.
    let mut local = *acc;
    for (ab, bb) in apack
        .chunks_exact(SIMD_MR)
        .zip(bpack.chunks_exact(SIMD_NR))
        .take(k)
    {
        for (ii, row) in local.iter_mut().enumerate() {
            let av = ab[ii];
            for (c, &bv) in row.iter_mut().zip(bb) {
                *c = fmadd(av, bv, *c);
            }
        }
    }
    *acc = local;
}

// ---------------------------------------------------------------------------
// Packing helpers (shared by both tiers; only the tile stride differs)
// ---------------------------------------------------------------------------

/// Packs `w` columns starting at `j0` of row-major `b[r × n]` into a
/// `[r][tn]` panel. Lanes `w..tn` are left untouched — panels come from
/// `pool::take_zeroed`, so the right edge is already zero.
fn pack_b_rowmajor(dst: &mut [f32], b: &[f32], r: usize, n: usize, j0: usize, w: usize, tn: usize) {
    for p in 0..r {
        dst[p * tn..p * tn + w].copy_from_slice(&b[p * n + j0..p * n + j0 + w]);
    }
}

/// Packs `w` *rows* `j0..j0+w` of `b[kb × r]` transposed into a `[r][tn]`
/// panel (the `A·Bᵀ` variant's B layout). Iterates destination-contiguous
/// (`p` outer, so writes stream and their bounds checks fold into the chunk
/// length): packing is pure data movement, but with the micro-kernel shared
/// across variants it was the strided scatter-writes here that separated
/// `A·Bᵀ` from `Aᵀ·B` throughput.
fn pack_b_transposed(dst: &mut [f32], b: &[f32], r: usize, j0: usize, w: usize, tn: usize) {
    for (p, chunk) in dst.chunks_exact_mut(tn).take(r).enumerate() {
        for (jj, c) in chunk[..w].iter_mut().enumerate() {
            *c = b[(j0 + jj) * r + p];
        }
    }
}

/// Packs rows `i0..i0+mr` of row-major `a[m × r]` into a `[r][tm]` strip,
/// zero-filling lanes `mr..tm` (the strip buffer is reused across strips).
/// Destination-contiguous like [`pack_b_transposed`], for the same reason.
fn pack_a_rowmajor(dst: &mut [f32], a: &[f32], r: usize, i0: usize, mr: usize, tm: usize) {
    for (p, chunk) in dst.chunks_exact_mut(tm).take(r).enumerate() {
        for (ii, c) in chunk[..mr].iter_mut().enumerate() {
            *c = a[(i0 + ii) * r + p];
        }
        for c in chunk[mr..].iter_mut() {
            *c = 0.0;
        }
    }
}

/// Packs columns `i0..i0+mr` of `a[r × m]` (the `Aᵀ·B` variant's transposed
/// A layout) into a `[r][tm]` strip, zero-filling lanes `mr..tm`.
fn pack_a_colmajor(
    dst: &mut [f32],
    a: &[f32],
    r: usize,
    m: usize,
    i0: usize,
    mr: usize,
    tm: usize,
) {
    for p in 0..r {
        dst[p * tm..p * tm + mr].copy_from_slice(&a[p * m + i0..p * m + i0 + mr]);
        for ii in mr..tm {
            dst[p * tm + ii] = 0.0;
        }
    }
}

/// Shared driver for all variants and both tiled tiers. Logical problem:
/// `out[M,N] += Σ_p Â[i,p]·B̂[p,j]` with reduction length `r`; the closures
/// materialize `Â`/`B̂` panels from whatever physical layout the variant has,
/// and `TM`/`TN` select the tile shape. Row/column blocking lives here and is
/// free to change; the reduction is never split, so the accumulation chain is
/// whatever the micro-kernel does — bitwise-pinned for [`microkernel`],
/// epsilon-bounded for [`microkernel_simd`].
fn tiled_gemm<const TM: usize, const TN: usize>(
    out: &mut [f32],
    m: usize,
    r: usize,
    n: usize,
    pack_b_panel: &dyn Fn(&mut [f32], usize, usize),
    pack_a_strip: &dyn Fn(&mut [f32], usize, usize),
    kernel: impl Fn(&[f32], &[f32], usize, &mut [[f32; TN]; TM]),
) {
    debug_assert_eq!(out.len(), m * n);
    if m == 0 || n == 0 || r == 0 {
        return;
    }
    let panels = n.div_ceil(TN);
    let mut bpack = pool::take_zeroed(panels * r * TN);
    for panel in 0..panels {
        let j0 = panel * TN;
        let w = TN.min(n - j0);
        pack_b_panel(&mut bpack[panel * r * TN..(panel + 1) * r * TN], j0, w);
    }
    let mut apack = pool::take_zeroed(r * TM);
    let mut i0 = 0;
    while i0 < m {
        let mr = TM.min(m - i0);
        pack_a_strip(&mut apack, i0, mr);
        for panel in 0..panels {
            let j0 = panel * TN;
            let w = TN.min(n - j0);
            let bp = &bpack[panel * r * TN..(panel + 1) * r * TN];
            let mut acc = [[0.0f32; TN]; TM];
            kernel(&apack, bp, r, &mut acc);
            for ii in 0..mr {
                let crow = &mut out[(i0 + ii) * n + j0..(i0 + ii) * n + j0 + w];
                for (c, &v) in crow.iter_mut().zip(acc[ii].iter()) {
                    *c += v;
                }
            }
        }
        i0 += TM;
    }
    pool::give(apack);
    pool::give(bpack);
}

// ---------------------------------------------------------------------------
// Per-tier kernels for the three layout variants
// ---------------------------------------------------------------------------

/// `C[m,n] += A[m,k] · B[k,n]`, packed tier (bitwise-pinned).
pub fn gemm_ab_packed(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    tiled_gemm::<MR, NR>(
        out,
        m,
        k,
        n,
        &|dst, j0, w| pack_b_rowmajor(dst, b, k, n, j0, w, NR),
        &|dst, i0, mr| pack_a_rowmajor(dst, a, k, i0, mr, MR),
        microkernel,
    );
}

/// `C[m,n] += A[m,k] · B[k,n]`, simd tier (epsilon-bounded).
pub fn gemm_ab_simd(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    tiled_gemm::<SIMD_MR, SIMD_NR>(
        out,
        m,
        k,
        n,
        &|dst, j0, w| pack_b_rowmajor(dst, b, k, n, j0, w, SIMD_NR),
        &|dst, i0, mr| pack_a_rowmajor(dst, a, k, i0, mr, SIMD_MR),
        microkernel_simd,
    );
}

/// `C[m,n] += Aᵀ · B[k,n]` where `a` is stored `[k, m]`, packed tier.
pub fn gemm_atb_packed(a: &[f32], b: &[f32], out: &mut [f32], k: usize, m: usize, n: usize) {
    tiled_gemm::<MR, NR>(
        out,
        m,
        k,
        n,
        &|dst, j0, w| pack_b_rowmajor(dst, b, k, n, j0, w, NR),
        &|dst, i0, mr| pack_a_colmajor(dst, a, k, m, i0, mr, MR),
        microkernel,
    );
}

/// `C[m,n] += Aᵀ · B[k,n]` where `a` is stored `[k, m]`, simd tier.
pub fn gemm_atb_simd(a: &[f32], b: &[f32], out: &mut [f32], k: usize, m: usize, n: usize) {
    tiled_gemm::<SIMD_MR, SIMD_NR>(
        out,
        m,
        k,
        n,
        &|dst, j0, w| pack_b_rowmajor(dst, b, k, n, j0, w, SIMD_NR),
        &|dst, i0, mr| pack_a_colmajor(dst, a, k, m, i0, mr, SIMD_MR),
        microkernel_simd,
    );
}

/// `C[m,kb] += A[m,n] · Bᵀ` where `b` is stored `[kb, n]`, packed tier.
/// Transpose-packing B turns the old scalar dot product into the same
/// vectorized `NR`-lane tile as the other variants.
pub fn gemm_abt_packed(a: &[f32], b: &[f32], out: &mut [f32], m: usize, n: usize, kb: usize) {
    tiled_gemm::<MR, NR>(
        out,
        m,
        n,
        kb,
        &|dst, j0, w| pack_b_transposed(dst, b, n, j0, w, NR),
        &|dst, i0, mr| pack_a_rowmajor(dst, a, n, i0, mr, MR),
        microkernel,
    );
}

/// `C[m,kb] += A[m,n] · Bᵀ` where `b` is stored `[kb, n]`, simd tier.
pub fn gemm_abt_simd(a: &[f32], b: &[f32], out: &mut [f32], m: usize, n: usize, kb: usize) {
    tiled_gemm::<SIMD_MR, SIMD_NR>(
        out,
        m,
        n,
        kb,
        &|dst, j0, w| pack_b_transposed(dst, b, n, j0, w, SIMD_NR),
        &|dst, i0, mr| pack_a_rowmajor(dst, a, n, i0, mr, SIMD_MR),
        microkernel_simd,
    );
}

// ---------------------------------------------------------------------------
// Dispatching entry points (what the graph ops call)
// ---------------------------------------------------------------------------

/// `C[m,n] += A[m,k] · B[k,n]` via the [`active_tier`] kernel.
pub fn gemm_ab(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    let tier = active_tier();
    // Timing only — the kernel body is untouched, so the equivalence suites
    // hold with profiling on or off.
    let watch = embsr_obs::profile::enabled().then(embsr_obs::Stopwatch::start);
    match tier {
        KernelTier::Scalar => reference_gemm_ab(a, b, out, m, k, n),
        KernelTier::Packed => gemm_ab_packed(a, b, out, m, k, n),
        KernelTier::Simd => gemm_ab_simd(a, b, out, m, k, n),
    }
    if let Some(w) = watch {
        let site = match tier {
            KernelTier::Scalar => "gemm_ab[scalar]",
            KernelTier::Packed => "gemm_ab[packed]",
            KernelTier::Simd => "gemm_ab[simd]",
        };
        embsr_obs::profile::record(site, m, k, n, w.elapsed_us(), (2 * m * k * n) as u64);
    }
}

/// `C[m,n] += Aᵀ · B[k,n]` (`a` stored `[k, m]`) via the [`active_tier`]
/// kernel.
pub fn gemm_atb(a: &[f32], b: &[f32], out: &mut [f32], k: usize, m: usize, n: usize) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    let tier = active_tier();
    let watch = embsr_obs::profile::enabled().then(embsr_obs::Stopwatch::start);
    match tier {
        KernelTier::Scalar => reference_gemm_atb(a, b, out, k, m, n),
        KernelTier::Packed => gemm_atb_packed(a, b, out, k, m, n),
        KernelTier::Simd => gemm_atb_simd(a, b, out, k, m, n),
    }
    if let Some(w) = watch {
        let site = match tier {
            KernelTier::Scalar => "gemm_atb[scalar]",
            KernelTier::Packed => "gemm_atb[packed]",
            KernelTier::Simd => "gemm_atb[simd]",
        };
        embsr_obs::profile::record(site, m, k, n, w.elapsed_us(), (2 * m * k * n) as u64);
    }
}

/// `C[m,kb] += A[m,n] · Bᵀ` (`b` stored `[kb, n]`, reduction over `n`) via
/// the [`active_tier`] kernel.
pub fn gemm_abt(a: &[f32], b: &[f32], out: &mut [f32], m: usize, n: usize, kb: usize) {
    debug_assert_eq!(a.len(), m * n);
    debug_assert_eq!(b.len(), kb * n);
    let tier = active_tier();
    let watch = embsr_obs::profile::enabled().then(embsr_obs::Stopwatch::start);
    match tier {
        KernelTier::Scalar => reference_gemm_abt(a, b, out, m, n, kb),
        KernelTier::Packed => gemm_abt_packed(a, b, out, m, n, kb),
        KernelTier::Simd => gemm_abt_simd(a, b, out, m, n, kb),
    }
    if let Some(w) = watch {
        let site = match tier {
            KernelTier::Scalar => "gemm_abt[scalar]",
            KernelTier::Packed => "gemm_abt[packed]",
            KernelTier::Simd => "gemm_abt[simd]",
        };
        embsr_obs::profile::record(site, m, n, kb, w.elapsed_us(), (2 * m * n * kb) as u64);
    }
}

/// Straightforward scalar reference for [`gemm_ab`]: per output element, one
/// `+0.0`-seeded accumulator over `p` in ascending order, added into `out`
/// once. The packed kernels must match this bitwise.
pub fn reference_gemm_ab(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a[i * k + p] * b[p * n + j];
            }
            out[i * n + j] += acc;
        }
    }
}

/// Scalar reference for [`gemm_atb`] (`a` stored `[k, m]`).
pub fn reference_gemm_atb(a: &[f32], b: &[f32], out: &mut [f32], k: usize, m: usize, n: usize) {
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a[p * m + i] * b[p * n + j];
            }
            out[i * n + j] += acc;
        }
    }
}

/// Scalar reference for [`gemm_abt`] (`b` stored `[kb, n]`, reduction over `n`).
pub fn reference_gemm_abt(a: &[f32], b: &[f32], out: &mut [f32], m: usize, n: usize, kb: usize) {
    for i in 0..m {
        for j in 0..kb {
            let mut acc = 0.0f32;
            for p in 0..n {
                acc += a[i * n + p] * b[j * n + p];
            }
            out[i * kb + j] += acc;
        }
    }
}

impl Tensor {
    /// Batched matrix product: `[b,m,k] · [b,k,n] → [b,m,n]`, one packed
    /// kernel call per batch entry. Collapses the per-head / per-step matmul
    /// loops in the attention and recurrent layers into a single graph node.
    ///
    /// # Panics
    /// Panics on rank ≠ 3 or mismatched batch/inner dimensions.
    pub fn bmm(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape().rank(), 3, "bmm lhs must be rank 3");
        assert_eq!(rhs.shape().rank(), 3, "bmm rhs must be rank 3");
        let (b, m, k) = (self.shape().dims()[0], self.shape().dims()[1], self.shape().dims()[2]);
        let (b2, k2, n) = (rhs.shape().dims()[0], rhs.shape().dims()[1], rhs.shape().dims()[2]);
        assert_eq!(b, b2, "bmm batch dims: {} vs {}", b, b2);
        assert_eq!(k, k2, "bmm inner dims: {} vs {}", k, k2);

        if embsr_obs::metrics::enabled() {
            embsr_obs::metrics::counter("tensor.matmul_flops").add((2 * b * m * k * n) as u64);
        }
        let mut out = pool::take_zeroed(b * m * n);
        {
            let lhs = self.data();
            let rhsd = rhs.data();
            for bi in 0..b {
                gemm_ab(
                    &lhs[bi * m * k..(bi + 1) * m * k],
                    &rhsd[bi * k * n..(bi + 1) * k * n],
                    &mut out[bi * m * n..(bi + 1) * m * n],
                    m,
                    k,
                    n,
                );
            }
        }

        let lhs_t = self.clone();
        let rhs_t = rhs.clone();
        Tensor::from_op(
            out,
            Shape::new(&[b, m, n]),
            vec![self.clone(), rhs.clone()],
            "bmm",
            Box::new(move |grad| {
                // dA[b] = dC[b]·B[b]ᵀ ; dB[b] = A[b]ᵀ·dC[b]
                if lhs_t.is_grad() {
                    let mut da = pool::take_zeroed(b * m * k);
                    let rd = rhs_t.data();
                    for bi in 0..b {
                        gemm_abt(
                            &grad[bi * m * n..(bi + 1) * m * n],
                            &rd[bi * k * n..(bi + 1) * k * n],
                            &mut da[bi * m * k..(bi + 1) * m * k],
                            m,
                            n,
                            k,
                        );
                    }
                    drop(rd);
                    lhs_t.accumulate_grad_owned(da);
                }
                if rhs_t.is_grad() {
                    let mut db = pool::take_zeroed(b * k * n);
                    let ld = lhs_t.data();
                    for bi in 0..b {
                        gemm_atb(
                            &ld[bi * m * k..(bi + 1) * m * k],
                            &grad[bi * m * n..(bi + 1) * m * n],
                            &mut db[bi * k * n..(bi + 1) * k * n],
                            m,
                            k,
                            n,
                        );
                    }
                    drop(ld);
                    rhs_t.accumulate_grad_owned(db);
                }
            }),
        )
    }

    /// Batched matrix product with a transposed right operand:
    /// `[b,m,k] · [b,n,k]ᵀ → [b,m,n]`. The attention score pass
    /// (`Q·Kᵀ`) uses this to avoid materializing transposed key matrices.
    ///
    /// # Panics
    /// Panics on rank ≠ 3 or mismatched batch/inner dimensions.
    pub fn bmm_nt(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape().rank(), 3, "bmm_nt lhs must be rank 3");
        assert_eq!(rhs.shape().rank(), 3, "bmm_nt rhs must be rank 3");
        let (b, m, k) = (self.shape().dims()[0], self.shape().dims()[1], self.shape().dims()[2]);
        let (b2, n, k2) = (rhs.shape().dims()[0], rhs.shape().dims()[1], rhs.shape().dims()[2]);
        assert_eq!(b, b2, "bmm_nt batch dims: {} vs {}", b, b2);
        assert_eq!(k, k2, "bmm_nt inner dims: {} vs {}", k, k2);

        if embsr_obs::metrics::enabled() {
            embsr_obs::metrics::counter("tensor.matmul_flops").add((2 * b * m * k * n) as u64);
        }
        let mut out = pool::take_zeroed(b * m * n);
        {
            let lhs = self.data();
            let rhsd = rhs.data();
            for bi in 0..b {
                gemm_abt(
                    &lhs[bi * m * k..(bi + 1) * m * k],
                    &rhsd[bi * n * k..(bi + 1) * n * k],
                    &mut out[bi * m * n..(bi + 1) * m * n],
                    m,
                    k,
                    n,
                );
            }
        }

        let lhs_t = self.clone();
        let rhs_t = rhs.clone();
        Tensor::from_op(
            out,
            Shape::new(&[b, m, n]),
            vec![self.clone(), rhs.clone()],
            "bmm_nt",
            Box::new(move |grad| {
                // C[b] = A[b]·B[b]ᵀ ⇒ dA[b] = dC[b]·B[b] ; dB[b] = dC[b]ᵀ·A[b]
                if lhs_t.is_grad() {
                    let mut da = pool::take_zeroed(b * m * k);
                    let rd = rhs_t.data();
                    for bi in 0..b {
                        gemm_ab(
                            &grad[bi * m * n..(bi + 1) * m * n],
                            &rd[bi * n * k..(bi + 1) * n * k],
                            &mut da[bi * m * k..(bi + 1) * m * k],
                            m,
                            n,
                            k,
                        );
                    }
                    drop(rd);
                    lhs_t.accumulate_grad_owned(da);
                }
                if rhs_t.is_grad() {
                    let mut db = pool::take_zeroed(b * n * k);
                    let ld = lhs_t.data();
                    for bi in 0..b {
                        gemm_atb(
                            &grad[bi * m * n..(bi + 1) * m * n],
                            &ld[bi * m * k..(bi + 1) * m * k],
                            &mut db[bi * n * k..(bi + 1) * n * k],
                            m,
                            n,
                            k,
                        );
                    }
                    drop(ld);
                    rhs_t.accumulate_grad_owned(db);
                }
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::{assert_close, check_gradient};
    use crate::Rng;

    fn rand_vec(rng: &mut Rng, n: usize) -> Vec<f32> {
        (0..n).map(|_| rng.uniform_range(-1.0, 1.0)).collect()
    }

    const EDGE_SHAPES: &[(usize, usize, usize)] = &[
        (1, 1, 1),
        (3, 5, 7),
        (4, 8, 8),
        (5, 9, 11),
        (13, 32, 17),
        (33, 16, 65),
    ];

    #[test]
    fn gemm_ab_matches_reference_bitwise() {
        let mut rng = Rng::seed_from_u64(42);
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 7), (4, 8, 8), (5, 9, 11), (13, 32, 17)] {
            let a = rand_vec(&mut rng, m * k);
            let b = rand_vec(&mut rng, k * n);
            let mut packed = vec![0.0; m * n];
            let mut reference = vec![0.0; m * n];
            gemm_ab(&a, &b, &mut packed, m, k, n);
            reference_gemm_ab(&a, &b, &mut reference, m, k, n);
            let pb: Vec<u32> = packed.iter().map(|x| x.to_bits()).collect();
            let rb: Vec<u32> = reference.iter().map(|x| x.to_bits()).collect();
            assert_eq!(pb, rb, "gemm_ab diverged at ({m},{k},{n})");
        }
    }

    fn assert_rel_close(actual: &[f32], expected: &[f32], shape: (usize, usize, usize)) {
        for (i, (a, e)) in actual.iter().zip(expected).enumerate() {
            let tol = 1e-4_f32.max(e.abs() * 1e-5);
            assert!(
                (a - e).abs() <= tol,
                "simd diverged at {shape:?} element {i}: {a} vs {e}"
            );
        }
    }

    #[test]
    fn simd_tier_matches_reference_within_epsilon() {
        let mut rng = Rng::seed_from_u64(9);
        for &(m, k, n) in EDGE_SHAPES {
            let a = rand_vec(&mut rng, m * k);
            let b = rand_vec(&mut rng, k * n);

            let mut simd = vec![0.0; m * n];
            let mut reference = vec![0.0; m * n];
            gemm_ab_simd(&a, &b, &mut simd, m, k, n);
            reference_gemm_ab(&a, &b, &mut reference, m, k, n);
            assert_rel_close(&simd, &reference, (m, k, n));

            // Aᵀ·B: a stored [k, m]
            let at = rand_vec(&mut rng, k * m);
            let mut simd = vec![0.0; m * n];
            let mut reference = vec![0.0; m * n];
            gemm_atb_simd(&at, &b, &mut simd, k, m, n);
            reference_gemm_atb(&at, &b, &mut reference, k, m, n);
            assert_rel_close(&simd, &reference, (m, k, n));

            // A·Bᵀ: b stored [n_out, k_red]; reuse (m, k) as (m, red), n as kb
            let bt = rand_vec(&mut rng, n * k);
            let mut simd = vec![0.0; m * n];
            let mut reference = vec![0.0; m * n];
            gemm_abt_simd(&a, &bt, &mut simd, m, k, n);
            reference_gemm_abt(&a, &bt, &mut reference, m, k, n);
            assert_rel_close(&simd, &reference, (m, k, n));
        }
    }

    #[test]
    fn simd_tier_is_deterministic_across_calls() {
        let mut rng = Rng::seed_from_u64(3);
        let (m, k, n) = (13, 32, 17);
        let a = rand_vec(&mut rng, m * k);
        let b = rand_vec(&mut rng, k * n);
        let mut first = vec![0.0; m * n];
        gemm_ab_simd(&a, &b, &mut first, m, k, n);
        for _ in 0..3 {
            let mut again = vec![0.0; m * n];
            gemm_ab_simd(&a, &b, &mut again, m, k, n);
            let fb: Vec<u32> = first.iter().map(|x| x.to_bits()).collect();
            let ab: Vec<u32> = again.iter().map(|x| x.to_bits()).collect();
            assert_eq!(fb, ab, "simd tier must be run-to-run deterministic");
        }
    }

    #[test]
    fn tier_dispatch_routes_and_restores() {
        assert_eq!(active_tier(), KernelTier::Packed, "training default");
        with_tier(KernelTier::Simd, || {
            assert_eq!(active_tier(), KernelTier::Simd);
            with_tier(KernelTier::Scalar, || {
                assert_eq!(active_tier(), KernelTier::Scalar);
            });
            assert_eq!(active_tier(), KernelTier::Simd, "nesting must restore");
        });
        assert_eq!(active_tier(), KernelTier::Packed);

        let result = std::panic::catch_unwind(|| {
            with_tier(KernelTier::Simd, || panic!("boom"));
        });
        assert!(result.is_err());
        assert_eq!(active_tier(), KernelTier::Packed, "panic must restore");
    }

    #[test]
    fn scalar_tier_dispatch_is_reference_bitwise() {
        let mut rng = Rng::seed_from_u64(17);
        let (m, k, n) = (5, 9, 11);
        let a = rand_vec(&mut rng, m * k);
        let b = rand_vec(&mut rng, k * n);
        let mut dispatched = vec![0.0; m * n];
        with_tier(KernelTier::Scalar, || {
            gemm_ab(&a, &b, &mut dispatched, m, k, n);
        });
        let mut reference = vec![0.0; m * n];
        reference_gemm_ab(&a, &b, &mut reference, m, k, n);
        let db: Vec<u32> = dispatched.iter().map(|x| x.to_bits()).collect();
        let rb: Vec<u32> = reference.iter().map(|x| x.to_bits()).collect();
        assert_eq!(db, rb);
    }

    #[test]
    fn tier_names_round_trip() {
        for tier in [KernelTier::Scalar, KernelTier::Packed, KernelTier::Simd] {
            assert_eq!(KernelTier::parse(tier.name()), Some(tier));
        }
        assert_eq!(KernelTier::parse("avx999"), None);
        assert!(simd_lanes() >= 1);
    }

    #[test]
    fn bmm_matches_per_batch_matmul() {
        let mut rng = Rng::seed_from_u64(7);
        let (b, m, k, n) = (3, 4, 5, 6);
        let a = Tensor::from_vec(rand_vec(&mut rng, b * m * k), &[b, m, k]);
        let w = Tensor::from_vec(rand_vec(&mut rng, b * k * n), &[b, k, n]);
        let out = a.bmm(&w);
        assert_eq!(out.shape().dims(), &[b, m, n]);
        let ad = a.data();
        let wd = w.data();
        for bi in 0..b {
            let am = Tensor::from_vec(ad[bi * m * k..(bi + 1) * m * k].to_vec(), &[m, k]);
            let wm = Tensor::from_vec(wd[bi * k * n..(bi + 1) * k * n].to_vec(), &[k, n]);
            let expect = am.matmul(&wm);
            assert_close(
                &out.to_vec()[bi * m * n..(bi + 1) * m * n],
                &expect.to_vec(),
                0.0,
            );
        }
    }

    #[test]
    fn bmm_nt_matches_manual_transpose() {
        let mut rng = Rng::seed_from_u64(11);
        let (b, m, k, n) = (2, 3, 4, 5);
        let a = Tensor::from_vec(rand_vec(&mut rng, b * m * k), &[b, m, k]);
        let w = Tensor::from_vec(rand_vec(&mut rng, b * n * k), &[b, n, k]);
        let out = a.bmm_nt(&w);
        let ad = a.data();
        let wd = w.data();
        for bi in 0..b {
            let am = Tensor::from_vec(ad[bi * m * k..(bi + 1) * m * k].to_vec(), &[m, k]);
            let wm = Tensor::from_vec(wd[bi * n * k..(bi + 1) * n * k].to_vec(), &[n, k]);
            let expect = am.matmul(&wm.transpose());
            assert_close(
                &out.to_vec()[bi * m * n..(bi + 1) * m * n],
                &expect.to_vec(),
                1e-6,
            );
        }
    }

    #[test]
    fn bmm_gradcheck_both_sides() {
        let mut rng = Rng::seed_from_u64(1337);
        let (b, m, k, n) = (2, 2, 3, 2);
        let lhs = Tensor::from_vec(rand_vec(&mut rng, b * m * k), &[b, m, k]).requires_grad();
        let fixed_r = Tensor::from_vec(rand_vec(&mut rng, b * k * n), &[b, k, n]);
        check_gradient(&lhs, |x| x.bmm(&fixed_r).sum(), 1e-3, 1e-2);

        let rhs = Tensor::from_vec(rand_vec(&mut rng, b * k * n), &[b, k, n]).requires_grad();
        let fixed_l = Tensor::from_vec(rand_vec(&mut rng, b * m * k), &[b, m, k]);
        check_gradient(&rhs, |x| fixed_l.bmm(x).sum(), 1e-3, 1e-2);
    }

    #[test]
    fn bmm_nt_gradcheck_both_sides() {
        let mut rng = Rng::seed_from_u64(1337);
        let (b, m, k, n) = (2, 3, 2, 2);
        let lhs = Tensor::from_vec(rand_vec(&mut rng, b * m * k), &[b, m, k]).requires_grad();
        let fixed_r = Tensor::from_vec(rand_vec(&mut rng, b * n * k), &[b, n, k]);
        check_gradient(&lhs, |x| x.bmm_nt(&fixed_r).sum(), 1e-3, 1e-2);

        let rhs = Tensor::from_vec(rand_vec(&mut rng, b * n * k), &[b, n, k]).requires_grad();
        let fixed_l = Tensor::from_vec(rand_vec(&mut rng, b * m * k), &[b, m, k]);
        check_gradient(&rhs, |x| fixed_l.bmm_nt(x).sum(), 1e-3, 1e-2);
    }
}
