//! Training losses. The paper optimizes a softmax cross-entropy over all
//! candidate items (eq. 20), on top of the normalized-and-scaled logits of
//! eq. 19.

use crate::pool;
use crate::shape::Shape;
use crate::tensor::Tensor;

impl Tensor {
    /// Cross-entropy between row-wise logits and integer targets:
    /// `L = -(1/n) Σ_r log softmax(logits_r)[target_r]`.
    ///
    /// Fused log-softmax + NLL with the standard `softmax - onehot` backward,
    /// which is both faster and more stable than composing the two ops.
    ///
    /// # Panics
    /// Panics when `targets.len()` differs from the number of rows or a
    /// target is out of range.
    pub fn cross_entropy(&self, targets: &[usize]) -> Tensor {
        let (rows, cols) = self.shape().as_matrix();
        assert_eq!(targets.len(), rows, "one target per logits row");
        let d = self.data();
        let mut probs = pool::take_zeroed(rows * cols);
        let mut loss = 0.0;
        for r in 0..rows {
            let row = &d[r * cols..(r + 1) * cols];
            let t = targets[r];
            assert!(t < cols, "target {t} out of range ({cols} classes)");
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for (p, &x) in probs[r * cols..(r + 1) * cols].iter_mut().zip(row) {
                *p = (x - max).exp();
                sum += *p;
            }
            for p in &mut probs[r * cols..(r + 1) * cols] {
                *p /= sum;
            }
            loss -= probs[r * cols + t].max(1e-12).ln();
        }
        drop(d);
        loss /= rows as f32;

        let parent = self.clone();
        let probs = pool::guard(probs);
        let tg: Vec<usize> = targets.to_vec();
        Tensor::from_op(
            pool::take_from_iter(1, std::iter::once(loss)),
            Shape::scalar(),
            vec![self.clone()],
            "cross_entropy",
            Box::new(move |grad| {
                if parent.is_grad() {
                    let scale = grad[0] / rows as f32;
                    let mut g = pool::take_copy(&probs);
                    for (r, &t) in tg.iter().enumerate() {
                        g[r * cols + t] -= 1.0;
                    }
                    for v in &mut g {
                        *v *= scale;
                    }
                    parent.accumulate_grad_owned(g);
                }
            }),
        )
    }

    /// Convenience for the common single-session case: logits are `[1, |V|]`
    /// or `[|V|]` and there is one target item.
    pub fn cross_entropy_single(&self, target: usize) -> Tensor {
        let n = self.len();
        self.reshape(&[1, n]).cross_entropy(&[target])
    }
}

#[cfg(test)]
mod tests {
    use crate::testing::{assert_close, check_gradient};
    use crate::Tensor;

    #[test]
    fn uniform_logits_give_log_classes() {
        let logits = Tensor::zeros(&[1, 4]);
        let loss = logits.cross_entropy(&[2]);
        assert_close(&[loss.item()], &[(4.0f32).ln()], 1e-5);
    }

    #[test]
    fn perfect_prediction_loss_near_zero() {
        let logits = Tensor::from_vec(vec![100.0, 0.0, 0.0], &[1, 3]);
        assert!(logits.cross_entropy(&[0]).item() < 1e-3);
    }

    #[test]
    fn batch_loss_is_mean_of_rows() {
        let l1 = Tensor::from_vec(vec![2.0, 0.0], &[1, 2]).cross_entropy(&[0]).item();
        let l2 = Tensor::from_vec(vec![0.0, 1.0], &[1, 2]).cross_entropy(&[1]).item();
        let both = Tensor::from_vec(vec![2.0, 0.0, 0.0, 1.0], &[2, 2])
            .cross_entropy(&[0, 1])
            .item();
        assert_close(&[both], &[(l1 + l2) / 2.0], 1e-5);
    }

    #[test]
    fn cross_entropy_gradcheck() {
        let logits =
            Tensor::from_vec(vec![0.5, -0.3, 1.2, 0.1, 0.9, -0.7], &[2, 3]).requires_grad();
        check_gradient(&logits, |x| x.cross_entropy(&[2, 0]), 1e-3, 2e-2);
    }

    #[test]
    fn gradient_is_softmax_minus_onehot() {
        let logits = Tensor::from_vec(vec![0.0, 0.0], &[1, 2]).requires_grad();
        logits.cross_entropy(&[0]).backward();
        assert_close(&logits.grad().unwrap(), &[-0.5, 0.5], 1e-5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn target_bounds_checked() {
        let _ = Tensor::zeros(&[1, 3]).cross_entropy(&[3]);
    }
}
