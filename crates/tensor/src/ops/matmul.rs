//! Dense matrix multiplication and transposition.
//!
//! The inner loops are written in `ikj` order over contiguous rows so the
//! compiler can vectorize them; at the `d ≤ 128` scales used by the
//! experiments this is comfortably fast without blocking or SIMD intrinsics.

use crate::shape::Shape;
use crate::tensor::Tensor;

/// `C[m,n] = A[m,k] · B[k,n]`, accumulating into `out` (which must be zeroed
/// by the caller when accumulation is not wanted).
pub(crate) fn matmul_acc(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let crow = &mut out[i * n..(i + 1) * n];
        for (p, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            for (c, &bv) in crow.iter_mut().zip(brow.iter()) {
                *c += av * bv;
            }
        }
    }
}

/// `C[m,n] = A^T[m,k_rows] · B` where `a` is stored as `[k, m]`.
fn matmul_at_b(a: &[f32], b: &[f32], out: &mut [f32], k: usize, m: usize, n: usize) {
    // out[i, j] = sum_p a[p, i] * b[p, j]
    for p in 0..k {
        let arow = &a[p * m..(p + 1) * m];
        let brow = &b[p * n..(p + 1) * n];
        for (i, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let crow = &mut out[i * n..(i + 1) * n];
            for (c, &bv) in crow.iter_mut().zip(brow.iter()) {
                *c += av * bv;
            }
        }
    }
}

/// `C[m,k] = A[m,n] · B^T` where `b` is stored as `[k, n]`.
fn matmul_a_bt(a: &[f32], b: &[f32], out: &mut [f32], m: usize, n: usize, k: usize) {
    for i in 0..m {
        let arow = &a[i * n..(i + 1) * n];
        for j in 0..k {
            let brow = &b[j * n..(j + 1) * n];
            let mut acc = 0.0;
            for (&x, &y) in arow.iter().zip(brow.iter()) {
                acc += x * y;
            }
            out[i * k + j] = acc;
        }
    }
}

impl Tensor {
    /// Matrix product. Rank-1 operands are treated as `[1, d]` rows on the
    /// left and `[d, 1]` columns on the right would be ambiguous, so both
    /// operands must be rank-2; use [`Tensor::reshape`] for vectors.
    ///
    /// # Panics
    /// Panics on rank ≠ 2 or mismatched inner dimensions.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape().rank(), 2, "matmul lhs must be rank 2");
        assert_eq!(rhs.shape().rank(), 2, "matmul rhs must be rank 2");
        let (m, k) = self.shape().as_matrix();
        let (k2, n) = rhs.shape().as_matrix();
        assert_eq!(k, k2, "matmul inner dims: {} vs {}", k, k2);

        if embsr_obs::metrics::enabled() {
            embsr_obs::metrics::counter("tensor.matmul_flops").add((2 * m * k * n) as u64);
        }
        let mut out = vec![0.0; m * n];
        matmul_acc(&self.data(), &rhs.data(), &mut out, m, k, n);

        let lhs_t = self.clone();
        let rhs_t = rhs.clone();
        Tensor::from_op(
            out,
            Shape::new(&[m, n]),
            vec![self.clone(), rhs.clone()],
            "matmul",
            Box::new(move |grad| {
                // dA = dC · B^T ; dB = A^T · dC
                if lhs_t.is_grad() {
                    let mut da = vec![0.0; m * k];
                    matmul_a_bt(grad, &rhs_t.data(), &mut da, m, n, k);
                    lhs_t.accumulate_grad(&da);
                }
                if rhs_t.is_grad() {
                    let mut db = vec![0.0; k * n];
                    matmul_at_b(&lhs_t.data(), grad, &mut db, m, k, n);
                    rhs_t.accumulate_grad(&db);
                }
            }),
        )
    }

    /// Matrix transpose of a rank-2 tensor.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.shape().rank(), 2, "transpose needs rank 2");
        let (m, n) = self.shape().as_matrix();
        let d = self.data();
        let mut out = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = d[i * n + j];
            }
        }
        drop(d);
        let parent = self.clone();
        Tensor::from_op(
            out,
            Shape::new(&[n, m]),
            vec![self.clone()],
            "transpose",
            Box::new(move |grad| {
                if parent.is_grad() {
                    let mut g = vec![0.0; m * n];
                    for j in 0..n {
                        for i in 0..m {
                            g[i * n + j] = grad[j * m + i];
                        }
                    }
                    parent.accumulate_grad(&g);
                }
            }),
        )
    }

    /// Dot product of two equal-length tensors, returned as a scalar tensor.
    pub fn dot(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.len(), rhs.len(), "dot length mismatch");
        self.reshape(&[1, self.len()])
            .matmul(&rhs.reshape(&[rhs.len(), 1]))
            .reshape(&[1])
    }
}

#[cfg(test)]
mod tests {
    use crate::testing::{assert_close, check_gradient};
    use crate::Tensor;

    #[test]
    fn matmul_small_known_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        assert_eq!(a.matmul(&b).to_vec(), vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rectangular() {
        let a = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0], &[3, 2]);
        let b = Tensor::from_vec(vec![2.0, 3.0, 4.0, 5.0, 6.0, 7.0], &[2, 3]);
        let c = a.matmul(&b);
        assert_eq!(c.shape().dims(), &[3, 3]);
        assert_eq!(c.at(2, 0), 7.0); // row [1,1] · col [2,5]
    }

    #[test]
    fn matmul_gradcheck_lhs() {
        let a = Tensor::from_vec(vec![0.1, -0.2, 0.3, 0.4, 0.5, -0.6], &[2, 3]).requires_grad();
        check_gradient(
            &a,
            |x| {
                let b = Tensor::from_vec(vec![1.0, 2.0, -1.0, 0.5, 0.25, -0.75], &[3, 2]);
                x.matmul(&b).sum()
            },
            1e-3,
            1e-2,
        );
    }

    #[test]
    fn matmul_gradcheck_rhs() {
        let b = Tensor::from_vec(vec![1.0, 2.0, -1.0, 0.5], &[2, 2]).requires_grad();
        check_gradient(
            &b,
            |x| {
                let a = Tensor::from_vec(vec![0.3, -0.7, 1.1, 0.9], &[2, 2]);
                a.matmul(x).sum()
            },
            1e-3,
            1e-2,
        );
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let tt = a.transpose().transpose();
        assert_eq!(tt.to_vec(), a.to_vec());
        assert_eq!(a.transpose().shape().dims(), &[3, 2]);
    }

    #[test]
    fn transpose_gradient_flows() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).requires_grad();
        let w = Tensor::from_vec(vec![1.0, 0.0, 0.0, 2.0], &[2, 2]);
        a.transpose().mul(&w).sum().backward();
        // grad of transpose-then-weight is weight transposed back
        assert_close(&a.grad().unwrap(), &[1.0, 0.0, 0.0, 2.0], 1e-6);
    }

    #[test]
    fn dot_matches_manual() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let b = Tensor::from_vec(vec![4.0, 5.0, 6.0], &[3]);
        assert_close(&[a.dot(&b).item()], &[32.0], 1e-6);
    }
}
