//! Dense matrix multiplication and transposition.
//!
//! The actual arithmetic lives in [`crate::ops::kernels`]: all three product
//! layouts (`A·B` forward, `A·Bᵀ` / `Aᵀ·B` backward) dispatch to the packed,
//! register-tiled micro-kernels there. The old naive `ikj` loops — and their
//! branchy `av == 0.0` skips, which defeated vectorization on dense
//! activations — are gone; one-hot and gather-style inputs never reach dense
//! matmul in this codebase (embedding lookups use the dedicated
//! `gather_rows` indexed path), so no sparse fallback is kept.

use super::kernels::{gemm_ab, gemm_abt, gemm_atb};
use crate::pool;
use crate::shape::Shape;
use crate::tensor::Tensor;

impl Tensor {
    /// Matrix product. Rank-1 operands are treated as `[1, d]` rows on the
    /// left and `[d, 1]` columns on the right would be ambiguous, so both
    /// operands must be rank-2; use [`Tensor::reshape`] for vectors.
    ///
    /// # Panics
    /// Panics on rank ≠ 2 or mismatched inner dimensions.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape().rank(), 2, "matmul lhs must be rank 2");
        assert_eq!(rhs.shape().rank(), 2, "matmul rhs must be rank 2");
        let (m, k) = self.shape().as_matrix();
        let (k2, n) = rhs.shape().as_matrix();
        assert_eq!(k, k2, "matmul inner dims: {} vs {}", k, k2);

        if embsr_obs::metrics::enabled() {
            embsr_obs::metrics::counter("tensor.matmul_flops").add((2 * m * k * n) as u64);
        }
        let mut out = pool::take_zeroed(m * n);
        gemm_ab(&self.data(), &rhs.data(), &mut out, m, k, n);

        let lhs_t = self.clone();
        let rhs_t = rhs.clone();
        Tensor::from_op(
            out,
            Shape::new(&[m, n]),
            vec![self.clone(), rhs.clone()],
            "matmul",
            Box::new(move |grad| {
                // dA = dC · B^T ; dB = A^T · dC
                if lhs_t.is_grad() {
                    let mut da = pool::take_zeroed(m * k);
                    gemm_abt(grad, &rhs_t.data(), &mut da, m, n, k);
                    lhs_t.accumulate_grad_owned(da);
                }
                if rhs_t.is_grad() {
                    let mut db = pool::take_zeroed(k * n);
                    gemm_atb(&lhs_t.data(), grad, &mut db, m, k, n);
                    rhs_t.accumulate_grad_owned(db);
                }
            }),
        )
    }

    /// Matrix product with a transposed right operand: `[m,k] · [n,k]ᵀ →
    /// [m,n]`, without materializing the transpose. The scorers use this for
    /// the `[B,d]·[d,|V|]` logits product so the item table is consumed in
    /// its natural row-major layout — the `A·Bᵀ` kernel transpose-packs
    /// panels on the fly, which kills the per-call `[|V|,d]` transpose copy
    /// (and its tape node) the old `matmul(items.transpose())` spelling paid.
    ///
    /// Bitwise-identical to `self.matmul(&rhs.transpose())` in forward and
    /// backward: all three kernels reduce over the same index in the same
    /// ascending order, and `f32` multiplication commutes bitwise.
    ///
    /// # Panics
    /// Panics on rank ≠ 2 or mismatched inner dimensions.
    pub fn matmul_nt(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape().rank(), 2, "matmul_nt lhs must be rank 2");
        assert_eq!(rhs.shape().rank(), 2, "matmul_nt rhs must be rank 2");
        let (m, k) = self.shape().as_matrix();
        let (n, k2) = rhs.shape().as_matrix();
        assert_eq!(k, k2, "matmul_nt inner dims: {} vs {}", k, k2);

        if embsr_obs::metrics::enabled() {
            embsr_obs::metrics::counter("tensor.matmul_flops").add((2 * m * k * n) as u64);
        }
        let mut out = pool::take_zeroed(m * n);
        gemm_abt(&self.data(), &rhs.data(), &mut out, m, k, n);

        let lhs_t = self.clone();
        let rhs_t = rhs.clone();
        Tensor::from_op(
            out,
            Shape::new(&[m, n]),
            vec![self.clone(), rhs.clone()],
            "matmul_nt",
            Box::new(move |grad| {
                // C = A·Bᵀ ⇒ dA = dC·B ; dB = dCᵀ·A
                if lhs_t.is_grad() {
                    let mut da = pool::take_zeroed(m * k);
                    gemm_ab(grad, &rhs_t.data(), &mut da, m, n, k);
                    lhs_t.accumulate_grad_owned(da);
                }
                if rhs_t.is_grad() {
                    let mut db = pool::take_zeroed(n * k);
                    gemm_atb(grad, &lhs_t.data(), &mut db, m, n, k);
                    rhs_t.accumulate_grad_owned(db);
                }
            }),
        )
    }

    /// Matrix transpose of a rank-2 tensor.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.shape().rank(), 2, "transpose needs rank 2");
        let (m, n) = self.shape().as_matrix();
        let d = self.data();
        let mut out = pool::take_zeroed(m * n);
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = d[i * n + j];
            }
        }
        drop(d);
        let parent = self.clone();
        Tensor::from_op(
            out,
            Shape::new(&[n, m]),
            vec![self.clone()],
            "transpose",
            Box::new(move |grad| {
                if parent.is_grad() {
                    let mut g = pool::take_zeroed(m * n);
                    for j in 0..n {
                        for i in 0..m {
                            g[i * n + j] = grad[j * m + i];
                        }
                    }
                    parent.accumulate_grad_owned(g);
                }
            }),
        )
    }

    /// Dot product of two equal-length tensors, returned as a scalar tensor.
    pub fn dot(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.len(), rhs.len(), "dot length mismatch");
        self.reshape(&[1, self.len()])
            .matmul(&rhs.reshape(&[rhs.len(), 1]))
            .reshape(&[1])
    }
}

#[cfg(test)]
mod tests {
    use crate::testing::{assert_close, check_gradient};
    use crate::Tensor;

    #[test]
    fn matmul_small_known_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        assert_eq!(a.matmul(&b).to_vec(), vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rectangular() {
        let a = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0], &[3, 2]);
        let b = Tensor::from_vec(vec![2.0, 3.0, 4.0, 5.0, 6.0, 7.0], &[2, 3]);
        let c = a.matmul(&b);
        assert_eq!(c.shape().dims(), &[3, 3]);
        assert_eq!(c.at(2, 0), 7.0); // row [1,1] · col [2,5]
    }

    #[test]
    fn matmul_gradcheck_lhs() {
        let a = Tensor::from_vec(vec![0.1, -0.2, 0.3, 0.4, 0.5, -0.6], &[2, 3]).requires_grad();
        check_gradient(
            &a,
            |x| {
                let b = Tensor::from_vec(vec![1.0, 2.0, -1.0, 0.5, 0.25, -0.75], &[3, 2]);
                x.matmul(&b).sum()
            },
            1e-3,
            1e-2,
        );
    }

    #[test]
    fn matmul_gradcheck_rhs() {
        let b = Tensor::from_vec(vec![1.0, 2.0, -1.0, 0.5], &[2, 2]).requires_grad();
        check_gradient(
            &b,
            |x| {
                let a = Tensor::from_vec(vec![0.3, -0.7, 1.1, 0.9], &[2, 2]);
                a.matmul(x).sum()
            },
            1e-3,
            1e-2,
        );
    }

    #[test]
    fn matmul_nt_bitwise_equals_matmul_of_transpose() {
        use crate::Rng;
        let mut rng = Rng::seed_from_u64(29);
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 7), (4, 16, 33), (8, 48, 11)] {
            let a_data: Vec<f32> = (0..m * k).map(|_| rng.uniform_range(-1.0, 1.0)).collect();
            let b_data: Vec<f32> = (0..n * k).map(|_| rng.uniform_range(-1.0, 1.0)).collect();
            let a1 = Tensor::from_vec(a_data.clone(), &[m, k]).requires_grad();
            let b1 = Tensor::from_vec(b_data.clone(), &[n, k]).requires_grad();
            let a2 = Tensor::from_vec(a_data, &[m, k]).requires_grad();
            let b2 = Tensor::from_vec(b_data, &[n, k]).requires_grad();
            let nt = a1.matmul_nt(&b1);
            let chain = a2.matmul(&b2.transpose());
            let nb: Vec<u32> = nt.to_vec().iter().map(|v| v.to_bits()).collect();
            let cb: Vec<u32> = chain.to_vec().iter().map(|v| v.to_bits()).collect();
            assert_eq!(nb, cb, "forward diverged at ({m},{k},{n})");

            let w: Vec<f32> = (0..m * n).map(|_| rng.uniform_range(-1.0, 1.0)).collect();
            let wt = Tensor::from_vec(w, &[m, n]);
            nt.mul(&wt).sum().backward();
            chain.mul(&wt).sum().backward();
            for (x, y) in [(&a1, &a2), (&b1, &b2)] {
                let gx: Vec<u32> = x.grad().unwrap().iter().map(|v| v.to_bits()).collect();
                let gy: Vec<u32> = y.grad().unwrap().iter().map(|v| v.to_bits()).collect();
                assert_eq!(gx, gy, "backward diverged at ({m},{k},{n})");
            }
        }
    }

    #[test]
    fn matmul_nt_gradcheck_both_sides() {
        let a = Tensor::from_vec(vec![0.1, -0.2, 0.3, 0.4, 0.5, -0.6], &[2, 3]).requires_grad();
        check_gradient(
            &a,
            |x| {
                let b = Tensor::from_vec(vec![1.0, 2.0, -1.0, 0.5, 0.25, -0.75], &[2, 3]);
                x.matmul_nt(&b).sum()
            },
            1e-3,
            1e-2,
        );
        let b = Tensor::from_vec(vec![1.0, 2.0, -1.0, 0.5], &[2, 2]).requires_grad();
        check_gradient(
            &b,
            |x| {
                let a = Tensor::from_vec(vec![0.3, -0.7, 1.1, 0.9], &[2, 2]);
                a.matmul_nt(x).sum()
            },
            1e-3,
            1e-2,
        );
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let tt = a.transpose().transpose();
        assert_eq!(tt.to_vec(), a.to_vec());
        assert_eq!(a.transpose().shape().dims(), &[3, 2]);
    }

    #[test]
    fn transpose_gradient_flows() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).requires_grad();
        let w = Tensor::from_vec(vec![1.0, 0.0, 0.0, 2.0], &[2, 2]);
        a.transpose().mul(&w).sum().backward();
        // grad of transpose-then-weight is weight transposed back
        assert_close(&a.grad().unwrap(), &[1.0, 0.0, 0.0, 2.0], 1e-6);
    }

    #[test]
    fn dot_matches_manual() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let b = Tensor::from_vec(vec![4.0, 5.0, 6.0], &[3]);
        assert_close(&[a.dot(&b).item()], &[32.0], 1e-6);
    }
}
