//! Tensor operations, grouped by family. Each op builds a graph node with a
//! backward closure when any input requires gradients.

mod activation;
mod arith;
mod extras;
mod index;
/// Packed GEMM micro-kernels, their scalar reference implementations, and the
/// batched matmul entry points (public so benches and property tests can call
/// the kernels directly).
pub mod kernels;
mod loss;
mod matmul;
mod norm;
mod reduce;

pub use norm::softmax_slice;
