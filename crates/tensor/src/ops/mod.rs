//! Tensor operations, grouped by family. Each op builds a graph node with a
//! backward closure when any input requires gradients.

mod activation;
mod arith;
mod extras;
/// Fused serving-path ops: single-pass softmax and the normalize+scale
/// scorer chain (public so benches can drive the slice kernel directly).
pub mod fused;
mod index;
/// Packed GEMM micro-kernels, their scalar reference implementations, and the
/// batched matmul entry points (public so benches and property tests can call
/// the kernels directly).
pub mod kernels;
mod loss;
mod matmul;
mod norm;
mod reduce;

pub use fused::{
    fused_softmax_rows, gated_blend, gated_update_combine, gated_update_gates, gru_step_fused,
    gru_step_fused_masked, star_blend,
};
pub use norm::softmax_slice;
