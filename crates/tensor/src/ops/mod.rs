//! Tensor operations, grouped by family. Each op builds a graph node with a
//! backward closure when any input requires gradients.

mod activation;
mod arith;
mod extras;
mod index;
mod loss;
mod matmul;
mod norm;
mod reduce;

pub use norm::softmax_slice;
