//! Reductions: sums and means, whole-tensor and per-axis.

use crate::pool;
use crate::shape::Shape;
use crate::tensor::Tensor;

impl Tensor {
    /// Sum of all elements as a scalar tensor.
    pub fn sum(&self) -> Tensor {
        let s: f32 = self.data().iter().sum();
        let parent = self.clone();
        let n = self.len();
        Tensor::from_op(
            pool::take_from_iter(1, std::iter::once(s)),
            Shape::scalar(),
            vec![self.clone()],
            "sum",
            Box::new(move |grad| {
                if parent.is_grad() {
                    let mut g = pool::take_reserve(n);
                    g.resize(n, grad[0]);
                    parent.accumulate_grad_owned(g);
                }
            }),
        )
    }

    /// Mean of all elements as a scalar tensor.
    pub fn mean(&self) -> Tensor {
        let n = self.len() as f32;
        self.sum().mul_scalar(1.0 / n)
    }

    /// Column-wise mean of a rank-2 tensor: `[n, d] -> [d]`.
    ///
    /// This is the average pooling used to initialize the star node (paper
    /// eq. 2).
    pub fn mean_rows(&self) -> Tensor {
        let (rows, cols) = self.shape().as_matrix();
        assert!(rows > 0, "mean_rows on empty tensor");
        let d = self.data();
        let mut out = pool::take_zeroed(cols);
        for r in 0..rows {
            for c in 0..cols {
                out[c] += d[r * cols + c];
            }
        }
        let inv = 1.0 / rows as f32;
        for v in &mut out {
            *v *= inv;
        }
        drop(d);
        let parent = self.clone();
        Tensor::from_op(
            out,
            Shape::new(&[cols]),
            vec![self.clone()],
            "mean_rows",
            Box::new(move |grad| {
                if parent.is_grad() {
                    let inv = 1.0 / rows as f32;
                    let mut g = pool::take_zeroed(rows * cols);
                    for r in 0..rows {
                        for c in 0..cols {
                            g[r * cols + c] = grad[c] * inv;
                        }
                    }
                    parent.accumulate_grad_owned(g);
                }
            }),
        )
    }

    /// Row-wise sum of a rank-2 tensor: `[n, d] -> [n]`.
    pub fn sum_cols(&self) -> Tensor {
        let (rows, cols) = self.shape().as_matrix();
        let d = self.data();
        let out = pool::take_from_iter(
            rows,
            (0..rows).map(|r| d[r * cols..(r + 1) * cols].iter().sum()),
        );
        drop(d);
        let parent = self.clone();
        Tensor::from_op(
            out,
            Shape::new(&[rows]),
            vec![self.clone()],
            "sum_cols",
            Box::new(move |grad| {
                if parent.is_grad() {
                    let mut g = pool::take_zeroed(rows * cols);
                    for r in 0..rows {
                        for c in 0..cols {
                            g[r * cols + c] = grad[r];
                        }
                    }
                    parent.accumulate_grad_owned(g);
                }
            }),
        )
    }

    /// Column-wise sum of a rank-2 tensor: `[n, d] -> [d]`.
    pub fn sum_rows(&self) -> Tensor {
        let (rows, _cols) = self.shape().as_matrix();
        self.mean_rows().mul_scalar(rows as f32)
    }
}

#[cfg(test)]
mod tests {
    use crate::testing::{assert_close, check_gradient};
    use crate::Tensor;

    #[test]
    fn sum_and_mean() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(a.sum().item(), 10.0);
        assert_eq!(a.mean().item(), 2.5);
    }

    #[test]
    fn mean_rows_matches_star_node_init() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]);
        assert_close(&a.mean_rows().to_vec(), &[3.0, 4.0], 1e-6);
    }

    #[test]
    fn mean_rows_gradcheck() {
        let a = Tensor::from_vec(vec![0.5, -0.5, 1.5, 2.5], &[2, 2]).requires_grad();
        check_gradient(
            &a,
            |x| {
                let w = Tensor::from_vec(vec![1.0, 3.0], &[2]);
                x.mean_rows().mul(&w).sum()
            },
            1e-3,
            1e-2,
        );
    }

    #[test]
    fn sum_cols_shape_and_grad() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).requires_grad();
        let s = a.sum_cols();
        assert_eq!(s.to_vec(), vec![3.0, 7.0]);
        let w = Tensor::from_vec(vec![2.0, 5.0], &[2]);
        s.mul(&w).sum().backward();
        assert_close(&a.grad().unwrap(), &[2.0, 2.0, 5.0, 5.0], 1e-6);
    }

    #[test]
    fn sum_rows_is_column_sum() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_close(&a.sum_rows().to_vec(), &[4.0, 6.0], 1e-6);
    }
}
