//! Row gathering, scattering, slicing and concatenation — the structural ops
//! behind embedding lookups and per-node message passing.

use crate::pool;
use crate::shape::Shape;
use crate::tensor::Tensor;

impl Tensor {
    /// Gathers rows of a rank-2 tensor by index: `[v, d] × idx[n] -> [n, d]`.
    ///
    /// Backward scatters (index-adds) the incoming gradient back into the
    /// source rows, which is exactly the sparse gradient an embedding matrix
    /// needs.
    ///
    /// # Panics
    /// Panics when any index is out of bounds.
    pub fn gather_rows(&self, indices: &[usize]) -> Tensor {
        let (rows, cols) = self.shape().as_matrix();
        assert_eq!(self.shape().rank(), 2, "gather_rows needs rank 2");
        // Timing only — the gather body is untouched, so bitwise suites see
        // identical results whether or not profiling is enabled.
        let watch = embsr_obs::profile::enabled().then(embsr_obs::Stopwatch::start);
        let d = self.data();
        let mut out = pool::take_reserve(indices.len() * cols);
        for &i in indices {
            assert!(i < rows, "gather index {i} out of bounds ({rows} rows)");
            out.extend_from_slice(&d[i * cols..(i + 1) * cols]);
        }
        drop(d);
        if let Some(w) = watch {
            embsr_obs::profile::record("gather_rows", indices.len(), cols, 0, w.elapsed_us(), 0);
        }
        let parent = self.clone();
        let idx: Vec<usize> = indices.to_vec();
        Tensor::from_op(
            out,
            Shape::new(&[indices.len(), cols]),
            vec![self.clone()],
            "gather_rows",
            Box::new(move |grad| {
                if parent.is_grad() {
                    let mut g = pool::take_zeroed(rows * cols);
                    for (r, &i) in idx.iter().enumerate() {
                        let src = &grad[r * cols..(r + 1) * cols];
                        let dst = &mut g[i * cols..(i + 1) * cols];
                        for (dv, sv) in dst.iter_mut().zip(src) {
                            *dv += sv;
                        }
                    }
                    parent.accumulate_grad_owned(g);
                }
            }),
        )
    }

    /// A single row of a rank-2 tensor as a `[d]` vector.
    pub fn row(&self, index: usize) -> Tensor {
        let cols = self.cols();
        self.gather_rows(&[index]).reshape(&[cols])
    }

    /// Contiguous row slice `[start, end)` of a rank-2 tensor.
    pub fn slice_rows(&self, start: usize, end: usize) -> Tensor {
        assert!(start <= end && end <= self.rows(), "slice out of range");
        let idx: Vec<usize> = (start..end).collect();
        self.gather_rows(&idx)
    }

    /// Vertically concatenates rank-2 tensors with equal column counts.
    ///
    /// # Panics
    /// Panics on an empty input list or mismatched columns.
    pub fn concat_rows(parts: &[Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "concat_rows of nothing");
        let cols = parts[0].cols();
        let mut total_rows = 0;
        for p in parts {
            assert_eq!(p.cols(), cols, "concat_rows column mismatch");
            total_rows += p.rows();
        }
        let mut out = pool::take_reserve(total_rows * cols);
        for p in parts {
            out.extend_from_slice(&p.data());
        }
        let owned: Vec<Tensor> = parts.to_vec();
        let row_counts: Vec<usize> = parts.iter().map(Tensor::rows).collect();
        Tensor::from_op(
            out,
            Shape::new(&[total_rows, cols]),
            owned.clone(),
            "concat_rows",
            Box::new(move |grad| {
                let mut offset = 0;
                for (p, &r) in owned.iter().zip(row_counts.iter()) {
                    let span = r * cols;
                    if p.is_grad() {
                        p.accumulate_grad(&grad[offset..offset + span]);
                    }
                    offset += span;
                }
            }),
        )
    }

    /// Horizontally concatenates two tensors row by row:
    /// `[n, a] ++ [n, b] -> [n, a + b]`. Rank-1 inputs are treated as a
    /// single row. This is the `[x ; y]` concatenation from the paper's
    /// message functions (eq. 6) and gates (eq. 11, 18).
    pub fn concat_cols(&self, rhs: &Tensor) -> Tensor {
        // A rank-1 `[d]` operand is a single row here, not a column.
        let row_view = |t: &Tensor| match t.shape().rank() {
            1 => (1, t.len()),
            _ => t.shape().as_matrix(),
        };
        let (n1, a) = row_view(self);
        let (n2, b) = row_view(rhs);
        assert_eq!(n1, n2, "concat_cols row mismatch: {n1} vs {n2}");
        let la = self.data();
        let lb = rhs.data();
        let mut out = pool::take_reserve(n1 * (a + b));
        for r in 0..n1 {
            out.extend_from_slice(&la[r * a..(r + 1) * a]);
            out.extend_from_slice(&lb[r * b..(r + 1) * b]);
        }
        drop(la);
        drop(lb);
        let keep_rank1 = self.shape().rank() == 1 && rhs.shape().rank() == 1;
        let shape = if keep_rank1 {
            Shape::new(&[a + b])
        } else {
            Shape::new(&[n1, a + b])
        };
        let lt = self.clone();
        let rt = rhs.clone();
        Tensor::from_op(
            out,
            shape,
            vec![self.clone(), rhs.clone()],
            "concat_cols",
            Box::new(move |grad| {
                if lt.is_grad() {
                    let mut g = pool::take_zeroed(n1 * a);
                    for r in 0..n1 {
                        g[r * a..(r + 1) * a]
                            .copy_from_slice(&grad[r * (a + b)..r * (a + b) + a]);
                    }
                    lt.accumulate_grad_owned(g);
                }
                if rt.is_grad() {
                    let mut g = pool::take_zeroed(n1 * b);
                    for r in 0..n1 {
                        g[r * b..(r + 1) * b]
                            .copy_from_slice(&grad[r * (a + b) + a..(r + 1) * (a + b)]);
                    }
                    rt.accumulate_grad_owned(g);
                }
            }),
        )
    }

    /// Stacks `[d]` vectors into an `[n, d]` matrix.
    pub fn stack_rows(parts: &[Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "stack_rows of nothing");
        let d = parts[0].len();
        let reshaped: Vec<Tensor> = parts
            .iter()
            .map(|p| {
                assert_eq!(p.len(), d, "stack_rows length mismatch");
                p.reshape(&[1, d])
            })
            .collect();
        Tensor::concat_rows(&reshaped)
    }
}

#[cfg(test)]
mod tests {
    use crate::testing::assert_close;
    use crate::Tensor;

    #[test]
    fn gather_rows_selects_and_repeats() {
        let m = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]);
        let g = m.gather_rows(&[2, 0, 2]);
        assert_eq!(g.to_vec(), vec![5.0, 6.0, 1.0, 2.0, 5.0, 6.0]);
    }

    #[test]
    fn gather_rows_backward_scatters_with_accumulation() {
        let m = Tensor::zeros(&[3, 2]).requires_grad();
        // row 1 used twice: its gradient must be the sum of both uses.
        m.gather_rows(&[1, 1, 0]).sum().backward();
        assert_close(&m.grad().unwrap(), &[1.0, 1.0, 2.0, 2.0, 0.0, 0.0], 1e-6);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn gather_rows_bounds_checked() {
        let m = Tensor::zeros(&[2, 2]);
        let _ = m.gather_rows(&[5]);
    }

    #[test]
    fn concat_rows_roundtrip_gradients() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]).requires_grad();
        let b = Tensor::from_vec(vec![3.0, 4.0, 5.0, 6.0], &[2, 2]).requires_grad();
        let c = Tensor::concat_rows(&[a.clone(), b.clone()]);
        assert_eq!(c.shape().dims(), &[3, 2]);
        let w = Tensor::from_vec(vec![1.0, 1.0, 2.0, 2.0, 3.0, 3.0], &[3, 2]);
        c.mul(&w).sum().backward();
        assert_close(&a.grad().unwrap(), &[1.0, 1.0], 1e-6);
        assert_close(&b.grad().unwrap(), &[2.0, 2.0, 3.0, 3.0], 1e-6);
    }

    #[test]
    fn concat_cols_interleaves_rows() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![9.0, 8.0], &[2, 1]);
        let c = a.concat_cols(&b);
        assert_eq!(c.shape().dims(), &[2, 3]);
        assert_eq!(c.to_vec(), vec![1.0, 2.0, 9.0, 3.0, 4.0, 8.0]);
    }

    #[test]
    fn concat_cols_gradients_split_correctly() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]).requires_grad();
        let b = Tensor::from_vec(vec![3.0], &[1, 1]).requires_grad();
        let w = Tensor::from_vec(vec![10.0, 20.0, 30.0], &[1, 3]);
        a.concat_cols(&b).mul(&w).sum().backward();
        assert_close(&a.grad().unwrap(), &[10.0, 20.0], 1e-6);
        assert_close(&b.grad().unwrap(), &[30.0], 1e-6);
    }

    #[test]
    fn concat_cols_of_vectors_stays_rank1() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![3.0], &[1]);
        let c = a.concat_cols(&b);
        assert_eq!(c.shape().dims(), &[3]);
    }

    #[test]
    fn stack_rows_builds_matrix() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![3.0, 4.0], &[2]);
        let m = Tensor::stack_rows(&[a, b]);
        assert_eq!(m.shape().dims(), &[2, 2]);
        assert_eq!(m.at(1, 0), 3.0);
    }

    #[test]
    fn row_and_slice_rows() {
        let m = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]);
        assert_eq!(m.row(1).to_vec(), vec![3.0, 4.0]);
        assert_eq!(m.slice_rows(1, 3).shape().dims(), &[2, 2]);
    }
}
