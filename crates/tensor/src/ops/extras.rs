//! Additional utility ops: clamping, extrema, and masked softmax (useful
//! when batching variable-length sessions with padding).

use crate::pool;
use crate::tensor::Tensor;

impl Tensor {
    /// Clamps every element to `[lo, hi]`. Gradient passes through inside
    /// the range and is blocked outside (straight-through at the bounds).
    pub fn clamp(&self, lo: f32, hi: f32) -> Tensor {
        assert!(lo <= hi, "clamp bounds inverted");
        let saved = pool::guard_copy(&self.data());
        let out = pool::take_from_iter(saved.len(), saved.iter().map(|&x| x.clamp(lo, hi)));
        let parent = self.clone();
        Tensor::from_op(
            out,
            self.shape().clone(),
            vec![self.clone()],
            "clamp",
            Box::new(move |grad| {
                if parent.is_grad() {
                    let g = pool::take_from_iter(
                        grad.len(),
                        grad.iter()
                            .zip(saved.iter())
                            .map(|(&g, &x)| if x > lo && x < hi { g } else { 0.0 }),
                    );
                    parent.accumulate_grad_owned(g);
                }
            }),
        )
    }

    /// Maximum element (no gradient; a read-only query).
    pub fn max_value(&self) -> f32 {
        self.data()
            .iter()
            .cloned()
            .fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (no gradient; a read-only query).
    pub fn min_value(&self) -> f32 {
        self.data().iter().cloned().fold(f32::INFINITY, f32::min)
    }

    /// Index of the largest element (first on ties; no gradient).
    pub fn argmax(&self) -> usize {
        let d = self.data();
        let mut best = 0usize;
        for (i, &v) in d.iter().enumerate() {
            if v > d[best] {
                best = i;
            }
        }
        best
    }

    /// Row-wise softmax where positions with `mask == 0` receive zero
    /// probability (and contribute no gradient). `mask` must match the
    /// tensor's shape; every row must keep at least one unmasked position.
    pub fn masked_softmax_rows(&self, mask: &[f32]) -> Tensor {
        assert_eq!(mask.len(), self.len(), "mask length mismatch");
        let (rows, cols) = self.shape().as_matrix();
        for r in 0..rows {
            assert!(
                mask[r * cols..(r + 1) * cols].iter().any(|&m| m != 0.0),
                "row {r} fully masked"
            );
        }
        // Additive masking before the (stable) softmax: x + log(mask) with
        // log(0) ≈ -inf keeps autograd intact for unmasked positions.
        let shift = pool::take_from_iter(
            mask.len(),
            mask.iter().map(|&m| if m != 0.0 { 0.0 } else { -1e30 }),
        );
        self.add(&Tensor::leaf_pooled(shift, self.shape().clone(), false))
            .softmax_rows()
    }
}

#[cfg(test)]
mod tests {
    use crate::testing::{assert_close, check_gradient};
    use crate::Tensor;

    #[test]
    fn clamp_values_and_gradient() {
        let a = Tensor::from_vec(vec![-2.0, 0.5, 3.0], &[3]).requires_grad();
        let y = a.clamp(-1.0, 1.0);
        assert_eq!(y.to_vec(), vec![-1.0, 0.5, 1.0]);
        y.sum().backward();
        assert_close(&a.grad().unwrap(), &[0.0, 1.0, 0.0], 1e-6);
    }

    #[test]
    fn clamp_gradcheck_interior() {
        let a = Tensor::from_vec(vec![0.2, -0.3, 0.7], &[3]).requires_grad();
        check_gradient(&a, |x| x.clamp(-1.0, 1.0).square().sum(), 1e-3, 1e-2);
    }

    #[test]
    fn extrema_and_argmax() {
        let a = Tensor::from_vec(vec![3.0, -1.0, 7.0, 7.0], &[4]);
        assert_eq!(a.max_value(), 7.0);
        assert_eq!(a.min_value(), -1.0);
        assert_eq!(a.argmax(), 2, "first max wins ties");
    }

    #[test]
    fn masked_softmax_zeroes_masked_positions() {
        let a = Tensor::from_vec(vec![1.0, 5.0, 2.0], &[1, 3]);
        let y = a.masked_softmax_rows(&[1.0, 0.0, 1.0]).to_vec();
        assert!(y[1] < 1e-6, "masked position must get ~0 probability");
        assert_close(&[y[0] + y[2]], &[1.0], 1e-5);
    }

    #[test]
    fn masked_softmax_gradient_skips_masked() {
        let a = Tensor::from_vec(vec![0.5, 9.0, -0.5], &[1, 3]).requires_grad();
        let w = Tensor::from_vec(vec![1.0, 1.0, 2.0], &[1, 3]);
        a.masked_softmax_rows(&[1.0, 0.0, 1.0]).mul(&w).sum().backward();
        let g = a.grad().unwrap();
        assert!(g[1].abs() < 1e-6, "masked logit must get ~0 gradient, got {}", g[1]);
    }

    #[test]
    #[should_panic(expected = "fully masked")]
    fn fully_masked_row_rejected() {
        let a = Tensor::zeros(&[1, 2]);
        let _ = a.masked_softmax_rows(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "bounds inverted")]
    fn inverted_clamp_rejected() {
        let _ = Tensor::zeros(&[1]).clamp(1.0, -1.0);
    }
}
