//! Deterministic random number generation.
//!
//! All stochastic components (parameter init, dropout, dataset synthesis)
//! draw from an explicitly seeded [`Rng`] so every experiment in the paper
//! harness is reproducible bit-for-bit.

/// xoshiro256++ core: fast, tiny state, and excellent statistical quality
/// for non-cryptographic use. Implemented in-tree so the workspace stays
/// dependency-free.
struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Expands a 64-bit seed into the 256-bit state with SplitMix64, per
    /// the generator authors' recommendation (avoids the all-zero state).
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Xoshiro256 {
            s: [next(), next(), next(), next()],
        }
    }

    fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A seeded pseudo-random generator with the handful of distributions this
/// workspace needs. Wraps an in-tree xoshiro256++ and adds a Box–Muller
/// normal sampler.
pub struct Rng {
    inner: Xoshiro256,
    /// Cached second output of the Box–Muller transform.
    spare_normal: Option<f32>,
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        Rng {
            inner: Xoshiro256::seed_from_u64(seed),
            spare_normal: None,
        }
    }

    /// Uniform in `[0, 1)`.
    pub fn uniform(&mut self) -> f32 {
        // 24 high bits give a uniform f32 in [0,1) without bias.
        (self.inner.next_u32() >> 8) as f32 / (1u32 << 24) as f32
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform_range(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    /// Panics when `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        (self.inner.next_u64() % n as u64) as usize
    }

    /// Standard normal via Box–Muller.
    pub fn normal(&mut self) -> f32 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        loop {
            let u1 = self.uniform();
            if u1 <= f32::MIN_POSITIVE {
                continue;
            }
            let u2 = self.uniform();
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            self.spare_normal = Some(r * theta.sin());
            return r * theta.cos();
        }
    }

    /// Bernoulli draw with probability `p` of `true`.
    pub fn bernoulli(&mut self, p: f32) -> bool {
        self.uniform() < p
    }

    /// Samples an index from an unnormalized non-negative weight vector.
    ///
    /// # Panics
    /// Panics when the weights are empty or sum to zero.
    pub fn sample_weighted(&mut self, weights: &[f32]) -> usize {
        let total: f32 = weights.iter().sum();
        assert!(
            total > 0.0 && !weights.is_empty(),
            "sample_weighted needs positive total weight"
        );
        let mut x = self.uniform() * total;
        for (i, &w) in weights.iter().enumerate() {
            x -= w;
            if x <= 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }

    /// Derives an independent child generator; lets parallel workers keep
    /// determinism without sharing state.
    pub fn fork(&mut self) -> Rng {
        Rng::seed_from_u64(self.inner.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
        }
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut r = Rng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = r.uniform();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn normal_has_roughly_zero_mean_unit_var() {
        let mut r = Rng::seed_from_u64(2);
        let n = 50_000;
        let xs: Vec<f32> = (0..n).map(|_| r.normal()).collect();
        let mean = xs.iter().sum::<f32>() / n as f32;
        let var = xs.iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn sample_weighted_respects_weights() {
        let mut r = Rng::seed_from_u64(3);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[r.sample_weighted(&[1.0, 2.0, 7.0])] += 1;
        }
        assert!(counts[2] > counts[1] && counts[1] > counts[0]);
        let frac2 = counts[2] as f32 / 30_000.0;
        assert!((frac2 - 0.7).abs() < 0.03, "frac {frac2}");
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = Rng::seed_from_u64(4);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut a = Rng::seed_from_u64(6);
        let mut c1 = a.fork();
        let mut c2 = a.fork();
        // Extremely unlikely to coincide if independent.
        assert_ne!(c1.uniform().to_bits(), c2.uniform().to_bits());
    }
}
