//! Parameter initialization.
//!
//! The paper initializes parameters "the same with [12]" (MKM-SR), i.e.
//! uniform in `[-1/√d, 1/√d]`; Xavier and Kaiming initializers are provided
//! for the baselines that specify them.

use crate::rng::Rng;
use crate::tensor::Tensor;

/// Uniform init in `[-bound, bound]` with `bound = 1/√fan_in` — the scheme
/// used by SR-GNN/MKM-SR/EMBSR.
pub fn uniform_init(dims: &[usize], rng: &mut Rng) -> Tensor {
    let fan_in = *dims.last().expect("non-empty dims") as f32;
    let bound = 1.0 / fan_in.sqrt();
    let n: usize = dims.iter().product();
    let data: Vec<f32> = (0..n).map(|_| rng.uniform_range(-bound, bound)).collect();
    Tensor::from_vec(data, dims).requires_grad()
}

/// Xavier/Glorot uniform: `bound = √(6 / (fan_in + fan_out))` for `[out, in]`
/// or `[rows, cols]` matrices.
pub fn xavier_uniform(dims: &[usize], rng: &mut Rng) -> Tensor {
    let (fan_out, fan_in) = match dims {
        [n] => (1, *n),
        [r, c] => (*r, *c),
        _ => panic!("xavier_uniform supports rank 1 and 2"),
    };
    let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
    let n: usize = dims.iter().product();
    let data: Vec<f32> = (0..n).map(|_| rng.uniform_range(-bound, bound)).collect();
    Tensor::from_vec(data, dims).requires_grad()
}

/// Kaiming/He uniform for ReLU fan-in: `bound = √(6 / fan_in)`.
pub fn kaiming_uniform(dims: &[usize], rng: &mut Rng) -> Tensor {
    let fan_in = *dims.last().expect("non-empty dims") as f32;
    let bound = (6.0 / fan_in).sqrt();
    let n: usize = dims.iter().product();
    let data: Vec<f32> = (0..n).map(|_| rng.uniform_range(-bound, bound)).collect();
    Tensor::from_vec(data, dims).requires_grad()
}

/// A zero-initialized trainable tensor (bias vectors).
pub fn zeros_init(dims: &[usize]) -> Tensor {
    Tensor::zeros(dims).requires_grad()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_init_bound_respected() {
        let mut rng = Rng::seed_from_u64(1);
        let t = uniform_init(&[64, 16], &mut rng);
        let bound = 1.0 / (16.0f32).sqrt();
        assert!(t.to_vec().iter().all(|&x| x.abs() <= bound));
        assert!(t.is_grad());
    }

    #[test]
    fn xavier_bound_respected() {
        let mut rng = Rng::seed_from_u64(2);
        let t = xavier_uniform(&[8, 32], &mut rng);
        let bound = (6.0f32 / 40.0).sqrt();
        assert!(t.to_vec().iter().all(|&x| x.abs() <= bound));
    }

    #[test]
    fn init_is_deterministic() {
        let a = uniform_init(&[4, 4], &mut Rng::seed_from_u64(9)).to_vec();
        let b = uniform_init(&[4, 4], &mut Rng::seed_from_u64(9)).to_vec();
        assert_eq!(a, b);
    }

    #[test]
    fn zeros_init_is_trainable_zeros() {
        let t = zeros_init(&[5]);
        assert_eq!(t.to_vec(), vec![0.0; 5]);
        assert!(t.is_grad());
    }
}
