//! # embsr-tensor
//!
//! A small, dependency-light tensor library with reverse-mode automatic
//! differentiation, written as the training substrate for the EMBSR
//! reproduction (ICDE 2022, "Micro-Behavior Encoding for Session-based
//! Recommendation").
//!
//! The paper trains its models with PyTorch on GPUs; this crate replaces that
//! substrate with a pure-Rust CPU implementation of exactly the operations the
//! paper's models need:
//!
//! * elementwise arithmetic with row/scalar broadcasting,
//! * dense matrix multiplication,
//! * row gathering / scattering (embedding lookups and their sparse grads),
//! * softmax, layer normalization, L2 row normalization,
//! * the activations used by GRU/GGNN cells (sigmoid, tanh, relu),
//! * cross-entropy over logits, and
//! * the Adam optimizer with global-norm gradient clipping.
//!
//! ## Design
//!
//! A [`Tensor`] is an immutable handle (`Rc`) to a node in a dynamically built
//! computation graph. Every operation produces a new node that records its
//! parents and a backward closure. Calling [`Tensor::backward`] runs a
//! topological sweep and accumulates gradients into every reachable node with
//! `requires_grad`. Graph construction is skipped entirely when no input
//! requires gradients, so inference pays no tape overhead.
//!
//! ```
//! use embsr_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).requires_grad();
//! let b = Tensor::from_vec(vec![0.5, 0.5, 0.5, 0.5], &[2, 2]).requires_grad();
//! let loss = a.matmul(&b).sum();
//! loss.backward();
//! assert_eq!(a.grad().unwrap().len(), 4);
//! ```

mod autograd;
mod flat;
/// f16/bf16 bit conversions for reduced-precision snapshots.
pub mod half;
mod inference;
mod init;
mod ops;
mod optim;
mod pool;
mod rng;
mod shape;
mod tensor;
/// Graph validation (shape inference, detached-parameter detection,
/// numerical-hazard patterns) and the universal gradcheck registry.
pub mod verify;

pub use flat::{export_grads, export_params, flat_len, import_grads, import_params, tree_reduce};
pub use inference::{inference_mode, is_inference};
pub use init::{kaiming_uniform, uniform_init, xavier_uniform, zeros_init};
pub use ops::kernels;
pub use ops::{
    fused_softmax_rows, gated_blend, gated_update_combine, gated_update_gates, gru_step_fused,
    gru_step_fused_masked, softmax_slice, star_blend,
};
pub use pool::{clear_pool, pool_stats, reset_pool_stats, PoolStats};
pub use optim::{clip_grad_norm, Adam, AdamConfig, AdamParamState, Optimizer, Sgd};
pub use rng::Rng;
pub use shape::Shape;
pub use tensor::Tensor;

/// Numerical tolerance helpers shared by the test-suites of downstream crates.
pub mod testing {
    use crate::Tensor;

    /// Asserts that two slices are elementwise close.
    ///
    /// # Panics
    /// Panics with a descriptive message when any element differs by more
    /// than `tol`.
    pub fn assert_close(actual: &[f32], expected: &[f32], tol: f32) {
        assert_eq!(
            actual.len(),
            expected.len(),
            "length mismatch: {} vs {}",
            actual.len(),
            expected.len()
        );
        for (i, (a, e)) in actual.iter().zip(expected.iter()).enumerate() {
            assert!(
                (a - e).abs() <= tol,
                "element {i}: actual {a} vs expected {e} (tol {tol})"
            );
        }
    }

    /// Checks the analytic gradient of `f` at `input` against central finite
    /// differences.
    ///
    /// `f` must be a scalar-valued function of a single tensor. The check
    /// perturbs every element of `input` by `eps` in both directions.
    /// Assertion-style wrapper around [`crate::verify::gradcheck`] for use
    /// inside `#[test]` bodies.
    ///
    /// # Panics
    /// Panics with the gradcheck failure description when any element's
    /// normalized error exceeds `tol`.
    pub fn check_gradient<F>(input: &Tensor, f: F, eps: f32, tol: f32)
    where
        F: Fn(&Tensor) -> Tensor,
    {
        if let Err(e) = crate::verify::gradcheck(input, f, eps, tol) {
            panic!("{e}");
        }
    }
}
