//! In-tree IEEE-754 binary16 (f16) and bfloat16 bit conversions.
//!
//! The serving layer stores `FrozenModel` weights in reduced precision to
//! halve snapshot size and wire traffic; the pack/decode layer widens them
//! back to `f32` before any arithmetic, so kernels never see half floats.
//! Rust has no stable half types and the workspace takes no external crates,
//! so the conversions live here as pure bit manipulation.
//!
//! Contracts (asserted exhaustively over all 65 536 bit patterns in tests):
//!
//! * **Decode is exact**: every f16/bf16 value is exactly representable in
//!   `f32`, so `decode` introduces no error.
//! * **Encode rounds to nearest, ties to even** — the same rounding the
//!   hardware would use — with overflow to infinity and every NaN collapsed
//!   to the canonical quiet NaN of the target format (sign preserved).
//! * **Idempotence**: `encode(decode(bits)) == bits` for every non-NaN
//!   pattern. This is what makes reduced-precision replicas bitwise
//!   reproducible: a snapshot decoded, re-encoded and shipped again is
//!   byte-identical.
//! * **Monotonicity**: encoding preserves `<=` ordering of finite floats,
//!   so reduced-precision scores cannot invert a ranking that survives the
//!   quantization step.

/// Shifts `value` right by `shift` bits, rounding to nearest, ties to even.
fn round_shift_rne(value: u32, shift: u32) -> u32 {
    if shift == 0 {
        return value;
    }
    if shift > 31 {
        return 0;
    }
    let kept = value >> shift;
    let round_bit = (value >> (shift - 1)) & 1;
    let sticky = value & ((1u32 << (shift - 1)) - 1);
    if round_bit == 1 && (sticky != 0 || (kept & 1) == 1) {
        kept + 1
    } else {
        kept
    }
}

/// Encodes an `f32` as IEEE binary16 bits (round-to-nearest-even, overflow
/// to infinity, NaN canonicalized to `0x7E00`/`0xFE00`).
pub fn f32_to_f16_bits(value: f32) -> u16 {
    let bits = value.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp32 = ((bits >> 23) & 0xFF) as i32;
    let man32 = bits & 0x007F_FFFF;
    if exp32 == 0xFF {
        return if man32 == 0 { sign | 0x7C00 } else { sign | 0x7E00 };
    }
    if exp32 == 0 {
        // f32 subnormals are below 2^-126, far under the smallest f16
        // subnormal (2^-24): all round to (signed) zero.
        return sign;
    }
    let e = exp32 - 127 + 15; // f16-biased exponent
    if e >= 31 {
        return sign | 0x7C00; // magnitude ≥ 2^16: overflow to infinity
    }
    let half = if e <= 0 {
        // Subnormal f16: restore the implicit leading 1 and shift it below
        // the 10-bit mantissa. A round-up that carries into bit 10 lands on
        // the smallest normal, which is exactly right.
        let m = man32 | 0x0080_0000;
        round_shift_rne(m, (14 - e) as u32)
    } else {
        // Normal: drop 13 mantissa bits with RNE; a mantissa carry
        // propagates into the exponent (including up to infinity at e=30).
        ((e as u32) << 10) + round_shift_rne(man32, 13)
    };
    sign | (half as u16)
}

/// Decodes IEEE binary16 bits to `f32` (exact).
pub fn f16_bits_to_f32(bits: u16) -> f32 {
    let sign = ((bits & 0x8000) as u32) << 16;
    let exp = ((bits >> 10) & 0x1F) as u32;
    let man = (bits & 0x3FF) as u32;
    if exp == 0 {
        if man == 0 {
            return f32::from_bits(sign);
        }
        // Subnormal: man · 2^-24, exact as an f32 product of an integer and
        // a power of two.
        let v = (man as f32) * f32::from_bits(0x3380_0000); // 2^-24
        return if sign != 0 { -v } else { v };
    }
    if exp == 31 {
        return f32::from_bits(sign | 0x7F80_0000 | (man << 13));
    }
    f32::from_bits(sign | ((exp + 112) << 23) | (man << 13))
}

/// Encodes an `f32` as bfloat16 bits (round-to-nearest-even, overflow to
/// infinity, NaN canonicalized with the quiet bit set).
pub fn f32_to_bf16_bits(value: f32) -> u16 {
    let bits = value.to_bits();
    if value.is_nan() {
        let sign = ((bits >> 16) & 0x8000) as u16;
        return sign | 0x7FC0;
    }
    // bf16 is the top 16 bits of f32; RNE on the dropped half via the
    // add-then-truncate trick (the `(bits >> 16) & 1` term breaks ties to
    // even). Finite overflow naturally lands on the infinity pattern.
    let rounded = bits.wrapping_add(0x7FFF + ((bits >> 16) & 1));
    (rounded >> 16) as u16
}

/// Decodes bfloat16 bits to `f32` (exact: bf16 is a truncated f32).
pub fn bf16_bits_to_f32(bits: u16) -> f32 {
    f32::from_bits((bits as u32) << 16)
}

/// Casts a slice down to f16 bits.
pub fn cast_f32_to_f16(xs: &[f32]) -> Vec<u16> {
    xs.iter().map(|&x| f32_to_f16_bits(x)).collect()
}

/// Widens f16 bits back to f32 (exact).
pub fn cast_f16_to_f32(bits: &[u16]) -> Vec<f32> {
    bits.iter().map(|&b| f16_bits_to_f32(b)).collect()
}

/// Casts a slice down to bf16 bits.
pub fn cast_f32_to_bf16(xs: &[f32]) -> Vec<u16> {
    xs.iter().map(|&x| f32_to_bf16_bits(x)).collect()
}

/// Widens bf16 bits back to f32 (exact).
pub fn cast_bf16_to_f32(bits: &[u16]) -> Vec<f32> {
    bits.iter().map(|&b| bf16_bits_to_f32(b)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Maps a sign-magnitude float bit pattern to a monotone integer key.
    fn order_key16(bits: u16) -> i32 {
        let v = bits as i32;
        if v & 0x8000 != 0 {
            0x8000 - v // negative range, descending magnitude
        } else {
            v + 0x8000
        }
    }

    #[test]
    fn f16_decode_encode_is_identity_exhaustive() {
        for b in 0..=u16::MAX {
            let v = f16_bits_to_f32(b);
            if v.is_nan() {
                let back = f32_to_f16_bits(v);
                assert!(
                    f16_bits_to_f32(back).is_nan(),
                    "NaN-ness lost for {b:#06x}"
                );
                assert_eq!(back & 0x8000, b & 0x8000, "NaN sign lost for {b:#06x}");
            } else {
                assert_eq!(
                    f32_to_f16_bits(v),
                    b,
                    "round-trip failed for {b:#06x} ({v})"
                );
            }
        }
    }

    #[test]
    fn bf16_decode_encode_is_identity_exhaustive() {
        for b in 0..=u16::MAX {
            let v = bf16_bits_to_f32(b);
            if v.is_nan() {
                let back = f32_to_bf16_bits(v);
                assert!(bf16_bits_to_f32(back).is_nan());
                assert_eq!(back & 0x8000, b & 0x8000);
            } else {
                assert_eq!(f32_to_bf16_bits(v), b, "round-trip failed for {b:#06x}");
            }
        }
    }

    #[test]
    fn f16_encode_is_monotone_over_decoded_grid() {
        // Consecutive finite f16 values, decoded to f32, must decode in
        // strictly increasing order (exactness + monotonicity together).
        let mut finite: Vec<u16> = (0..=u16::MAX)
            .filter(|&b| f16_bits_to_f32(b).is_finite())
            .collect();
        finite.sort_by_key(|&b| order_key16(b));
        let mut prev = f32::NEG_INFINITY;
        for &b in &finite {
            let v = f16_bits_to_f32(b);
            assert!(
                v >= prev,
                "decode order inversion at {b:#06x}: {v} < {prev}"
            );
            prev = v;
        }
    }

    #[test]
    fn encode_is_monotone_on_f32_samples() {
        // Dense sweep of finite f32s (including values between grid points):
        // x <= y must imply encode(x) <= encode(y) for both formats.
        let mut xs: Vec<f32> = Vec::new();
        for i in 0..20_000 {
            let t = (i as f32 / 20_000.0 - 0.5) * 2.0;
            xs.push(t * 70_000.0); // spans past f16 overflow
            xs.push(t * 1e-5); // subnormal f16 territory
            xs.push(t * 3.0e38); // spans past bf16-max territory
        }
        xs.sort_by(f32::total_cmp);
        let mut prev16 = i32::MIN;
        let mut prev_bf = i32::MIN;
        for &x in &xs {
            let k16 = order_key16(f32_to_f16_bits(x));
            let kbf = order_key16(f32_to_bf16_bits(x));
            assert!(k16 >= prev16, "f16 encode not monotone at {x}");
            assert!(kbf >= prev_bf, "bf16 encode not monotone at {x}");
            prev16 = k16;
            prev_bf = kbf;
        }
    }

    #[test]
    fn specials_survive_both_formats() {
        type Roundtrip = (fn(f32) -> u16, fn(u16) -> f32);
        let formats: [Roundtrip; 2] = [
            (f32_to_f16_bits, f16_bits_to_f32),
            (f32_to_bf16_bits, bf16_bits_to_f32),
        ];
        for (enc, dec) in formats {
            assert_eq!(dec(enc(f32::INFINITY)), f32::INFINITY);
            assert_eq!(dec(enc(f32::NEG_INFINITY)), f32::NEG_INFINITY);
            assert!(dec(enc(f32::NAN)).is_nan());
            assert!(dec(enc(-f32::NAN)).is_nan());
            assert_eq!(dec(enc(0.0)).to_bits(), 0.0f32.to_bits());
            assert_eq!(dec(enc(-0.0)).to_bits(), (-0.0f32).to_bits());
            // Overflow rounds to infinity rather than saturating silently.
            assert_eq!(dec(enc(f32::MAX)), f32::INFINITY);
        }
        // f16 subnormal flush: below half the smallest subnormal -> zero.
        assert_eq!(f32_to_f16_bits(2.0f32.powi(-26)), 0);
        // At exactly the smallest f16 subnormal the value survives.
        let tiny = 2.0f32.powi(-24);
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(tiny)), tiny);
    }

    #[test]
    fn relative_error_is_bounded() {
        // f16 has 11 significand bits (2^-11 relative), bf16 has 8 (2^-8).
        let mut x = 1.0e-3f32;
        while x < 6.0e4 {
            for v in [x, -x] {
                let r16 = f16_bits_to_f32(f32_to_f16_bits(v));
                assert!(
                    (r16 - v).abs() <= v.abs() * 2.0f32.powi(-11),
                    "f16 error too large at {v}: {r16}"
                );
                let rbf = bf16_bits_to_f32(f32_to_bf16_bits(v));
                assert!(
                    (rbf - v).abs() <= v.abs() * 2.0f32.powi(-8),
                    "bf16 error too large at {v}: {rbf}"
                );
            }
            x *= 1.7;
        }
    }

    #[test]
    fn ties_round_to_even() {
        // 1 + 2^-11 is exactly between two f16 values (1.0 and 1+2^-10);
        // RNE picks the even mantissa: 1.0.
        let tie = 1.0 + 2.0f32.powi(-11);
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(tie)), 1.0);
        // 1 + 3·2^-11 is between 1+2^-10 and 1+2^-9; even mantissa is the
        // upper one here.
        let tie_up = 1.0 + 3.0 * 2.0f32.powi(-11);
        assert_eq!(
            f16_bits_to_f32(f32_to_f16_bits(tie_up)),
            1.0 + 2.0 * 2.0f32.powi(-10)
        );
        // Same for bf16 at its coarser grid.
        let tie_bf = 1.0 + 2.0f32.powi(-8);
        assert_eq!(bf16_bits_to_f32(f32_to_bf16_bits(tie_bf)), 1.0);
    }

    #[test]
    fn slice_casts_round_trip() {
        let xs: Vec<f32> = (0..257).map(|i| (i as f32 * 0.37).sin() * 12.0).collect();
        let f16_once = cast_f16_to_f32(&cast_f32_to_f16(&xs));
        let f16_twice = cast_f16_to_f32(&cast_f32_to_f16(&f16_once));
        assert_eq!(
            f16_once.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            f16_twice.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            "quantization must be idempotent"
        );
        let bf_once = cast_bf16_to_f32(&cast_f32_to_bf16(&xs));
        let bf_twice = cast_bf16_to_f32(&cast_f32_to_bf16(&bf_once));
        assert_eq!(
            bf_once.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            bf_twice.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
        );
    }
}
