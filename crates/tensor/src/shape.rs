//! Tensor shapes.
//!
//! The models in this workspace only ever need rank-1 and rank-2 tensors
//! (sessions are processed one at a time, so there is no batch dimension),
//! but [`Shape`] stores arbitrary rank so utility code can stay generic.

use std::fmt;

/// The dimensions of a tensor.
///
/// Cheap to clone; shapes in this workspace are at most rank 2.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from explicit dimensions.
    pub fn new(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }

    /// A scalar (rank-0 is represented as `[1]` for storage simplicity).
    pub fn scalar() -> Self {
        Shape(vec![1])
    }

    /// The dimensions as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.0.iter().product()
    }

    /// True when the shape contains zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of rows of a rank-2 shape (or the length of a rank-1 shape).
    ///
    /// # Panics
    /// Panics on rank > 2.
    pub fn rows(&self) -> usize {
        match self.0.len() {
            1 => self.0[0],
            2 => self.0[0],
            r => panic!("rows() on rank-{r} shape"),
        }
    }

    /// Number of columns of a rank-2 shape (1 for rank-1 shapes).
    ///
    /// # Panics
    /// Panics on rank > 2.
    pub fn cols(&self) -> usize {
        match self.0.len() {
            1 => 1,
            2 => self.0[1],
            r => panic!("cols() on rank-{r} shape"),
        }
    }

    /// Returns `(rows, cols)` viewing the shape as a matrix.
    pub fn as_matrix(&self) -> (usize, usize) {
        (self.rows(), self.cols())
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn len_is_product_of_dims() {
        assert_eq!(Shape::new(&[3, 4]).len(), 12);
        assert_eq!(Shape::new(&[7]).len(), 7);
        assert_eq!(Shape::scalar().len(), 1);
    }

    #[test]
    fn matrix_view_of_vector_is_column() {
        let s = Shape::new(&[5]);
        assert_eq!(s.as_matrix(), (5, 1));
    }

    #[test]
    fn matrix_view_of_matrix() {
        let s = Shape::new(&[2, 9]);
        assert_eq!(s.as_matrix(), (2, 9));
        assert_eq!(s.rank(), 2);
    }

    #[test]
    fn empty_shape_detected() {
        assert!(Shape::new(&[0, 4]).is_empty());
        assert!(!Shape::new(&[1]).is_empty());
    }
}
