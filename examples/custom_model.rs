//! Extending the library: plugging a custom model into the shared training
//! and evaluation machinery.
//!
//! Implements a miniature "last-item bilinear" recommender as a
//! [`SessionModel`] — the trait EMBSR itself implements — and runs it
//! through the same `Trainer`/`evaluate` pipeline as the paper's models.
//!
//! ```bash
//! cargo run --release -p embsr-bench --example custom_model
//! ```

use embsr_datasets::{build_dataset, DatasetPreset, SyntheticConfig};
use embsr_eval::evaluate;
use embsr_nn::{Embedding, Forward, Linear, Module};
use embsr_sessions::Session;
use embsr_tensor::{Rng, Tensor};
use embsr_train::{NeuralRecommender, Recommender, SessionModel, TrainConfig};

/// `score(v | session) = (W · e_last) · e_v` — a learned bigram model.
struct LastItemBilinear {
    items: Embedding,
    w: Linear,
    num_items: usize,
}

impl LastItemBilinear {
    fn new(num_items: usize, dim: usize, seed: u64) -> Self {
        let mut rng = Rng::seed_from_u64(seed);
        LastItemBilinear {
            items: Embedding::new(num_items, dim, &mut rng),
            w: Linear::new_no_bias(dim, dim, &mut rng),
            num_items,
        }
    }
}

impl SessionModel for LastItemBilinear {
    fn name(&self) -> &str {
        "LastItemBilinear"
    }

    fn num_items(&self) -> usize {
        self.num_items
    }

    fn parameters(&self) -> Vec<Tensor> {
        let mut p = self.items.parameters();
        p.extend(self.w.parameters());
        p
    }

    fn logits(&self, session: &Session, _training: bool, _rng: &mut Rng) -> Tensor {
        let last = session.events.last().expect("non-empty session").item as usize;
        let q = self.w.apply(&self.items.lookup_one(last)); // [d]
        let d = q.len();
        q.reshape(&[1, d])
            .matmul(&self.items.weight.transpose())
            .reshape(&[self.num_items])
    }
}

fn main() {
    let data = build_dataset(&SyntheticConfig::tiny(DatasetPreset::JdAppliances));
    let mut rec = NeuralRecommender::new(
        LastItemBilinear::new(data.num_items, 16, 11),
        TrainConfig {
            epochs: 4,
            ..TrainConfig::default()
        },
    );
    println!("training the custom model on {} examples…", data.train.len());
    rec.fit(&data.train, &data.val);
    let report = rec.report.as_ref().expect("trained");
    println!(
        "final train loss {:.3} (best epoch {})",
        report.final_train_loss(),
        report.best_epoch
    );

    let eval = evaluate(&rec, &data.test, &[5, 10, 20]);
    println!(
        "custom model: H@5 {:.2}  H@10 {:.2}  H@20 {:.2}  M@20 {:.2}",
        eval.hit_at(5),
        eval.hit_at(10),
        eval.hit_at(20),
        eval.mrr_at(20)
    );
    assert!(eval.hit_at(20) > 0.0, "the bigram signal should be learnable");
}
