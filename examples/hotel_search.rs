//! Hotel-search scenario (the paper's Trivago analysis): when the ground
//! truth almost never re-occurs inside the session, popularity methods
//! collapse while micro-behavior models keep working — the effect behind
//! S-POP's zero row in Table III.
//!
//! ```bash
//! cargo run --release -p embsr-bench --example hotel_search
//! ```

use embsr_baselines::{Sknn, SPop};
use embsr_core::{Embsr, EmbsrConfig};
use embsr_datasets::{build_dataset, DatasetPreset, SyntheticConfig};
use embsr_eval::evaluate;
use embsr_train::{NeuralRecommender, Recommender, TrainConfig};

fn main() {
    let mut cfg = SyntheticConfig::tiny(DatasetPreset::Trivago);
    cfg.num_sessions = 800;
    let data = build_dataset(&cfg);
    println!(
        "Trivago-style corpus: {} items, target-repeat ratio {:.3} (ground truth almost \
         never appears in the session)\n",
        data.num_items, data.stats.target_repeat_ratio
    );

    let ks = [5usize, 10, 20];

    let mut spop = SPop::new(data.num_items);
    spop.fit(&data.train, &data.val);
    let e_spop = evaluate(&spop, &data.test, &ks);

    let mut sknn = Sknn::new(data.num_items);
    sknn.fit(&data.train, &data.val);
    let e_sknn = evaluate(&sknn, &data.test, &ks);

    let mut embsr = NeuralRecommender::new(
        Embsr::new(EmbsrConfig::full(data.num_items, data.num_ops, 24)),
        TrainConfig {
            epochs: 3,
            ..TrainConfig::default()
        },
    );
    println!("training EMBSR…");
    embsr.fit(&data.train, &data.val);
    let e_embsr = evaluate(&embsr, &data.test, &ks);

    println!("\n{:<8}{:>10}{:>10}{:>10}", "Model", "H@5", "H@10", "H@20");
    for e in [&e_spop, &e_sknn, &e_embsr] {
        println!(
            "{:<8}{:>10.2}{:>10.2}{:>10.2}",
            e.model,
            e.hit_at(5),
            e.hit_at(10),
            e.hit_at(20)
        );
    }

    println!(
        "\nS-POP can only re-recommend items already in the session, so with a repeat \
         ratio of {:.1}% it hits almost nothing — the paper reports exactly 0 on Trivago. \
         Models that generalize (SKNN via neighbors, EMBSR via learned intent) still rank \
         the unseen target.",
        100.0 * data.stats.target_repeat_ratio
    );
    assert!(
        e_embsr.hit_at(20) > e_spop.hit_at(20),
        "EMBSR must beat S-POP on no-repeat data"
    );
}
