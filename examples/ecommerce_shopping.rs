//! E-commerce scenario (the paper's Fig. 1 motivation): two users see the
//! *same items* but perform different micro-operations — a macro-behavior
//! model cannot tell them apart, EMBSR can.
//!
//! We train EMBSR and the strongest macro baseline (SGNN-HN) on a
//! JD-Computers-style corpus, then score two sessions that share the exact
//! item sequence but differ in operations, and show how far apart the
//! predictions are.
//!
//! ```bash
//! cargo run --release -p embsr-bench --example ecommerce_shopping
//! ```

use embsr_baselines::SgnnHn;
use embsr_core::{Embsr, EmbsrConfig};
use embsr_datasets::{build_dataset, DatasetPreset, SyntheticConfig};
use embsr_sessions::Session;
use embsr_train::{NeuralRecommender, Recommender, TrainConfig};

fn top5(scores: &[f32]) -> Vec<usize> {
    embsr_eval::top_k(scores, 5)
}

fn overlap(a: &[usize], b: &[usize]) -> usize {
    a.iter().filter(|x| b.contains(x)).count()
}

fn main() {
    let mut cfg = SyntheticConfig::tiny(DatasetPreset::JdComputers);
    cfg.num_sessions = 800;
    let data = build_dataset(&cfg);
    let train_cfg = TrainConfig {
        epochs: 3,
        ..TrainConfig::default()
    };

    println!("training EMBSR and SGNN-HN on {} sessions…", data.train.len());
    let mut embsr = NeuralRecommender::new(
        Embsr::new(EmbsrConfig::full(data.num_items, data.num_ops, 24)),
        train_cfg.clone(),
    );
    embsr.fit(&data.train, &data.val);
    let mut sgnn = NeuralRecommender::new(SgnnHn::new(data.num_items, 24, 7), train_cfg);
    sgnn.fit(&data.train, &data.val);

    // Fig. 1: same item sequence, different operations.
    // user 1: "buyer" — reads comments (op 2) and adds to cart (op 3)
    let buyer = Session::from_pairs(1, &[(5, 0), (8, 0), (8, 1), (8, 2), (8, 3), (2, 0)]);
    // user 2: "browser" — clicks through everything
    let browser = Session::from_pairs(2, &[(5, 0), (8, 0), (2, 0)]);

    let e1 = top5(&embsr.scores(&buyer));
    let e2 = top5(&embsr.scores(&browser));
    let s1 = top5(&sgnn.scores(&buyer));
    let s2 = top5(&sgnn.scores(&browser));

    println!("\nEMBSR   top-5 (buyer):   {e1:?}");
    println!("EMBSR   top-5 (browser): {e2:?}   overlap {} / 5", overlap(&e1, &e2));
    println!("SGNN-HN top-5 (buyer):   {s1:?}");
    println!("SGNN-HN top-5 (browser): {s2:?}   overlap {} / 5", overlap(&s1, &s2));

    println!(
        "\nSGNN-HN sees identical item sequences (operations are invisible to it), so \
         its two lists overlap {}/5; EMBSR separates the intents ({}/5 overlap).",
        overlap(&s1, &s2),
        overlap(&e1, &e2)
    );
    assert_eq!(
        overlap(&s1, &s2),
        5,
        "macro model must be blind to operations on identical item sequences — \
         note the buyer's item sequence merges to the same macro sequence"
    );
}
