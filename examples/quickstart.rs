//! Quickstart: build a synthetic micro-behavior corpus, train EMBSR, and
//! recommend the next item for a live session.
//!
//! ```bash
//! cargo run --release -p embsr-bench --example quickstart
//! ```

use embsr_core::{Embsr, EmbsrConfig};
use embsr_datasets::{build_dataset, DatasetPreset, SyntheticConfig};
use embsr_eval::evaluate;
use embsr_sessions::Session;
use embsr_train::{NeuralRecommender, Recommender, TrainConfig};

fn main() {
    // 1. A small JD-Appliances-style corpus (sessions of (item, operation)
    //    micro-behaviors, preprocessed with the paper's 70/10/20 protocol).
    let mut cfg = SyntheticConfig::tiny(DatasetPreset::JdAppliances);
    cfg.num_sessions = 800;
    let data = build_dataset(&cfg);
    println!(
        "dataset: {} items, {} ops, {} train / {} val / {} test examples",
        data.num_items,
        data.num_ops,
        data.train.len(),
        data.val.len(),
        data.test.len()
    );

    // 2. The full EMBSR model: multigraph GNN + GRU edge features +
    //    operation-aware self-attention + fusion gate.
    let model = Embsr::new(EmbsrConfig::full(data.num_items, data.num_ops, 24));
    let mut rec = NeuralRecommender::new(
        model,
        TrainConfig {
            epochs: 3,
            ..TrainConfig::default()
        },
    );

    // 3. Train (mini-batch Adam with early stopping on validation loss).
    rec.fit(&data.train, &data.val);
    if let Some(report) = &rec.report {
        for e in &report.epochs {
            println!(
                "epoch {}: train loss {:.3}, val loss {:.3}",
                e.epoch, e.train_loss, e.val_loss
            );
        }
    }

    // 4. Evaluate with the paper's metrics.
    let eval = evaluate(&rec, &data.test, &[5, 10, 20]);
    println!(
        "H@5 {:.2}  H@10 {:.2}  H@20 {:.2}  M@20 {:.2}",
        eval.hit_at(5),
        eval.hit_at(10),
        eval.hit_at(20),
        eval.mrr_at(20)
    );

    // 5. Recommend for a live session: the user clicked item 3, read the
    //    comments of item 7, and added it to the cart.
    let live = Session::from_pairs(999, &[(3, 0), (7, 0), (7, 2), (7, 3)]);
    let scores = rec.scores(&live);
    let top = embsr_eval::top_k(&scores, 5);
    println!("top-5 recommendations for the live session: {top:?}");
}
